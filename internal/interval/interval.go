// Package interval implements half-open intervals [a, b) over [0, 1) with
// dyadic end points, and finite unions of such intervals ("interval-unions",
// Definition 4.1 of the paper).
//
// Interval-unions are the commodity of the general-graph broadcasting
// protocol (Section 4) and of the label-assignment protocol (Section 5):
// the root injects [0, 1) into the network, vertices partition what they
// receive among their out-edges, and the terminal declares termination once
// the pieces it has seen re-assemble the whole of [0, 1).
package interval

import (
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/bitio"
	"repro/internal/dyadic"
)

// Interval is the half-open interval [Lo, Hi). An interval with Lo >= Hi is
// empty; the canonical empty interval is the zero value [0, 0).
type Interval struct {
	Lo, Hi dyadic.D
}

// Empty returns the canonical empty interval [0, 0).
func Empty() Interval { return Interval{} }

// Full returns [0, 1), the commodity injected by the root.
func Full() Interval {
	return Interval{Lo: dyadic.Zero(), Hi: dyadic.One()}
}

// IsEmpty reports whether the interval contains no points.
func (iv Interval) IsEmpty() bool { return iv.Lo.Cmp(iv.Hi) >= 0 }

// Contains reports whether x lies in [Lo, Hi).
func (iv Interval) Contains(x dyadic.D) bool {
	return iv.Lo.Cmp(x) <= 0 && x.Cmp(iv.Hi) < 0
}

// Measure returns Hi - Lo (0 for empty intervals).
func (iv Interval) Measure() dyadic.D {
	if iv.IsEmpty() {
		return dyadic.Zero()
	}
	return iv.Hi.Sub(iv.Lo)
}

// String renders the interval as [lo, hi).
func (iv Interval) String() string {
	return fmt.Sprintf("[%s, %s)", iv.Lo, iv.Hi)
}

// EncodedBits returns the exact bit cost of encoding the two end points.
func (iv Interval) EncodedBits() int {
	return iv.Lo.EncodedBits() + iv.Hi.EncodedBits()
}

// Encode appends the interval's end points to w.
func (iv Interval) Encode(w *bitio.Writer) {
	iv.Lo.Encode(w)
	iv.Hi.Encode(w)
}

// DecodeInterval reads an interval written by Encode.
func DecodeInterval(r *bitio.Reader) (Interval, error) {
	lo, err := dyadic.Decode(r)
	if err != nil {
		return Interval{}, err
	}
	hi, err := dyadic.Decode(r)
	if err != nil {
		return Interval{}, err
	}
	return Interval{Lo: lo, Hi: hi}, nil
}

// Split partitions [Lo, Hi) into k >= 1 disjoint intervals using the paper's
// power-of-2 rule (proof of Theorem 4.3): with N the smallest power of 2 with
// N >= k and delta = (Hi-Lo)/N, it yields k-1 intervals of size delta and one
// final interval [Lo+(k-1)delta, Hi). Each new end point costs only O(log k)
// additional bits relative to the end points of the input interval, which is
// what bounds label and symbol lengths by O(|V| log dout).
func (iv Interval) Split(k int) []Interval {
	if k < 1 {
		panic("interval: Split requires k >= 1")
	}
	if iv.IsEmpty() {
		panic("interval: Split of an empty interval")
	}
	if k == 1 {
		return []Interval{iv}
	}
	logN := uint(bits.Len(uint(k - 1))) // ceil(log2 k)
	delta := iv.Hi.Sub(iv.Lo).Shr(logN)
	out := make([]Interval, k)
	lo := iv.Lo
	for i := 0; i < k-1; i++ {
		hi := lo.Add(delta)
		out[i] = Interval{Lo: lo, Hi: hi}
		lo = hi
	}
	out[k-1] = Interval{Lo: lo, Hi: iv.Hi}
	return out
}

// Union is a finite union of disjoint, non-adjacent, non-empty intervals in
// canonical form: sorted by Lo. The zero value is the empty union.
//
// Unions are value types: operations return new unions and never mutate
// their receivers or arguments.
type Union struct {
	ivs []Interval
}

// EmptyUnion returns the empty interval-union.
func EmptyUnion() Union { return Union{} }

// FullUnion returns the union {[0, 1)}.
func FullUnion() Union { return Union{ivs: []Interval{Full()}} }

// NewUnion builds a canonical union from arbitrary (possibly overlapping,
// adjacent, empty, unsorted) intervals.
func NewUnion(ivs ...Interval) Union {
	u := Union{}
	for _, iv := range ivs {
		u = u.AddInterval(iv)
	}
	return u
}

// Intervals returns the canonical intervals of u in increasing order.
// The caller must not modify the returned slice.
func (u Union) Intervals() []Interval { return u.ivs }

// NumIntervals returns the number of maximal intervals in u.
func (u Union) NumIntervals() int { return len(u.ivs) }

// IsEmpty reports whether u contains no points.
func (u Union) IsEmpty() bool { return len(u.ivs) == 0 }

// IsFull reports whether u == [0, 1). This is the terminal's stopping
// predicate S: it holds exactly when the whole commodity has arrived.
func (u Union) IsFull() bool {
	return len(u.ivs) == 1 && u.ivs[0].Lo.IsZero() && u.ivs[0].Hi.IsOne()
}

// Contains reports whether x in u.
func (u Union) Contains(x dyadic.D) bool {
	for _, iv := range u.ivs {
		if x.Cmp(iv.Hi) < 0 {
			return iv.Lo.Cmp(x) <= 0
		}
	}
	return false
}

// Measure returns the total length of u.
func (u Union) Measure() dyadic.D {
	m := dyadic.Zero()
	for _, iv := range u.ivs {
		m = m.Add(iv.Measure())
	}
	return m
}

// AddInterval returns u with iv merged in.
func (u Union) AddInterval(iv Interval) Union {
	if iv.IsEmpty() {
		return u
	}
	out := make([]Interval, 0, len(u.ivs)+1)
	i := 0
	// Keep intervals strictly before iv (not touching).
	for i < len(u.ivs) && u.ivs[i].Hi.Cmp(iv.Lo) < 0 {
		out = append(out, u.ivs[i])
		i++
	}
	// Merge all intervals overlapping or touching iv.
	lo, hi := iv.Lo, iv.Hi
	for i < len(u.ivs) && u.ivs[i].Lo.Cmp(hi) <= 0 {
		if u.ivs[i].Lo.Cmp(lo) < 0 {
			lo = u.ivs[i].Lo
		}
		if u.ivs[i].Hi.Cmp(hi) > 0 {
			hi = u.ivs[i].Hi
		}
		i++
	}
	out = append(out, Interval{Lo: lo, Hi: hi})
	out = append(out, u.ivs[i:]...)
	return Union{ivs: out}
}

// Union returns u ∪ o.
func (u Union) Union(o Union) Union {
	if len(u.ivs) < len(o.ivs) {
		u, o = o, u
	}
	res := Union{ivs: append([]Interval(nil), u.ivs...)}
	for _, iv := range o.ivs {
		res = res.AddInterval(iv)
	}
	return res
}

// Intersect returns u ∩ o.
func (u Union) Intersect(o Union) Union {
	var out []Interval
	i, j := 0, 0
	for i < len(u.ivs) && j < len(o.ivs) {
		a, b := u.ivs[i], o.ivs[j]
		lo := a.Lo
		if b.Lo.Cmp(lo) > 0 {
			lo = b.Lo
		}
		hi := a.Hi
		if b.Hi.Cmp(hi) < 0 {
			hi = b.Hi
		}
		if lo.Cmp(hi) < 0 {
			out = append(out, Interval{Lo: lo, Hi: hi})
		}
		if a.Hi.Cmp(b.Hi) < 0 {
			i++
		} else {
			j++
		}
	}
	return Union{ivs: out}
}

// Subtract returns u \ o.
func (u Union) Subtract(o Union) Union {
	var out []Interval
	j := 0
	for _, a := range u.ivs {
		lo := a.Lo
		for j < len(o.ivs) && o.ivs[j].Hi.Cmp(lo) <= 0 {
			j++
		}
		k := j
		for k < len(o.ivs) && o.ivs[k].Lo.Cmp(a.Hi) < 0 {
			b := o.ivs[k]
			if b.Lo.Cmp(lo) > 0 {
				out = append(out, Interval{Lo: lo, Hi: b.Lo})
			}
			if b.Hi.Cmp(lo) > 0 {
				lo = b.Hi
			}
			k++
		}
		if lo.Cmp(a.Hi) < 0 {
			out = append(out, Interval{Lo: lo, Hi: a.Hi})
		}
	}
	return Union{ivs: out}
}

// Equal reports whether u and o cover the same point set.
func (u Union) Equal(o Union) bool {
	if len(u.ivs) != len(o.ivs) {
		return false
	}
	for i := range u.ivs {
		if !u.ivs[i].Lo.Equal(o.ivs[i].Lo) || !u.ivs[i].Hi.Equal(o.ivs[i].Hi) {
			return false
		}
	}
	return true
}

// ContainsUnion reports whether o ⊆ u.
func (u Union) ContainsUnion(o Union) bool {
	return o.Subtract(u).IsEmpty()
}

// String renders the union as a set of intervals.
func (u Union) String() string {
	if u.IsEmpty() {
		return "{}"
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, iv := range u.ivs {
		if i > 0 {
			sb.WriteString(" ∪ ")
		}
		sb.WriteString(iv.String())
	}
	sb.WriteByte('}')
	return sb.String()
}

// EncodedBits returns the exact bit cost of Encode: a delta-coded interval
// count followed by each interval's end points.
func (u Union) EncodedBits() int {
	n := bitio.Delta0Len(uint64(len(u.ivs)))
	for _, iv := range u.ivs {
		n += iv.EncodedBits()
	}
	return n
}

// Encode appends a self-delimiting encoding of u to w.
func (u Union) Encode(w *bitio.Writer) {
	w.WriteDelta0(uint64(len(u.ivs)))
	for _, iv := range u.ivs {
		iv.Encode(w)
	}
}

// DecodeUnion reads a union written by Encode.
func DecodeUnion(r *bitio.Reader) (Union, error) {
	n, err := r.ReadDelta0()
	if err != nil {
		return Union{}, err
	}
	u := Union{}
	for i := uint64(0); i < n; i++ {
		iv, err := DecodeInterval(r)
		if err != nil {
			return Union{}, err
		}
		u = u.AddInterval(iv)
	}
	return u, nil
}

// Key returns a canonical string for use as a map key.
func (u Union) Key() string {
	var w bitio.Writer
	u.Encode(&w)
	return string(w.Bytes())
}

// MaxEndpointPrec returns the largest fraction-bit length among the end
// points of u; Theorem 4.3 bounds this by O(|V| log dout).
func (u Union) MaxEndpointPrec() uint {
	var p uint
	for _, iv := range u.ivs {
		if q := iv.Lo.Prec(); q > p {
			p = q
		}
		if q := iv.Hi.Prec(); q > p {
			p = q
		}
	}
	return p
}

// CanonicalPartition partitions u into d >= 1 disjoint interval-unions per
// the paper's Section 4 rule: with u = I_1 ∪ ... ∪ I_r (maximal intervals),
// split I_1 into d-1 pieces for the first d-1 parts and give ∪_{k>=2} I_k to
// the last part.
//
// Faithfulness note (DESIGN.md §3.1): when r == 1 the paper's literal rule
// would leave the last part empty and the subgraph behind the corresponding
// out-edge would never be visited, contradicting Theorem 4.2. We therefore
// split I_1 into d pieces in that case. Every vertex still splits at most one
// interval, into at most d parts, preserving the Theorem 4.3 length bound.
func (u Union) CanonicalPartition(d int) []Union {
	if d < 1 {
		panic("interval: CanonicalPartition requires d >= 1")
	}
	if u.IsEmpty() {
		panic("interval: CanonicalPartition of an empty union")
	}
	if d == 1 {
		return []Union{u}
	}
	out := make([]Union, d)
	if len(u.ivs) == 1 {
		for i, piece := range u.ivs[0].Split(d) {
			out[i] = Union{ivs: []Interval{piece}}
		}
		return out
	}
	for i, piece := range u.ivs[0].Split(d - 1) {
		out[i] = Union{ivs: []Interval{piece}}
	}
	rest := Union{ivs: append([]Interval(nil), u.ivs[1:]...)}
	out[d-1] = rest
	return out
}

// CanonicalPartitionLiteral is the paper's Section 4 rule taken literally:
// I_1 is always split into d-1 parts and the last part gets the remaining
// intervals — which is EMPTY when u is a single interval. It exists only for
// the E12 ablation, which demonstrates that the literal rule lets the
// terminal declare termination while vertices behind the starved out-edge
// never received the broadcast, violating Theorem 4.2 as stated. Production
// protocols use CanonicalPartition.
func (u Union) CanonicalPartitionLiteral(d int) []Union {
	if d < 1 {
		panic("interval: CanonicalPartitionLiteral requires d >= 1")
	}
	if u.IsEmpty() {
		panic("interval: CanonicalPartitionLiteral of an empty union")
	}
	if d == 1 {
		return []Union{u}
	}
	out := make([]Union, d)
	for i, piece := range u.ivs[0].Split(d - 1) {
		out[i] = Union{ivs: []Interval{piece}}
	}
	out[d-1] = Union{ivs: append([]Interval(nil), u.ivs[1:]...)}
	return out
}
