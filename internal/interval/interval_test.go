package interval

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitio"
	"repro/internal/dyadic"
)

func d(num uint64, p uint) dyadic.D { return dyadic.FromFrac(num, p) }

func iv(loNum uint64, loP uint, hiNum uint64, hiP uint) Interval {
	return Interval{Lo: d(loNum, loP), Hi: d(hiNum, hiP)}
}

// randUnion draws a random canonical union from up to n intervals whose end
// points are multiples of 2^-bits.
func randUnion(rng *rand.Rand, n int, bits uint) Union {
	u := EmptyUnion()
	den := uint64(1) << bits
	for i := 0; i < rng.Intn(n+1); i++ {
		a := rng.Uint64() % den
		b := rng.Uint64() % (den + 1)
		if a > b {
			a, b = b, a
		}
		u = u.AddInterval(Interval{Lo: d(a, bits), Hi: d(b, bits)})
	}
	return u
}

func TestIntervalBasics(t *testing.T) {
	if !Empty().IsEmpty() {
		t.Fatal("Empty not empty")
	}
	full := Full()
	if full.IsEmpty() || !full.Measure().IsOne() {
		t.Fatal("Full broken")
	}
	half := iv(0, 0, 1, 1) // [0, 1/2)
	if !half.Contains(d(1, 2)) {
		t.Fatal("1/4 should be in [0,1/2)")
	}
	if half.Contains(d(1, 1)) {
		t.Fatal("1/2 should not be in [0,1/2) (half-open)")
	}
	if !half.Measure().Equal(d(1, 1)) {
		t.Fatal("measure of [0,1/2) != 1/2")
	}
}

func TestSplitPartitions(t *testing.T) {
	for k := 1; k <= 9; k++ {
		parts := Full().Split(k)
		if len(parts) != k {
			t.Fatalf("Split(%d) returned %d parts", k, len(parts))
		}
		// Consecutive, covering, non-empty.
		if !parts[0].Lo.IsZero() {
			t.Fatalf("Split(%d) first part starts at %s", k, parts[0].Lo)
		}
		for i := 0; i < k; i++ {
			if parts[i].IsEmpty() {
				t.Fatalf("Split(%d) part %d empty: %s", k, i, parts[i])
			}
			if i > 0 && !parts[i].Lo.Equal(parts[i-1].Hi) {
				t.Fatalf("Split(%d) gap between parts %d and %d", k, i-1, i)
			}
		}
		if !parts[k-1].Hi.IsOne() {
			t.Fatalf("Split(%d) last part ends at %s", k, parts[k-1].Hi)
		}
	}
}

func TestSplitEndpointGrowth(t *testing.T) {
	// Theorem 4.3: each split adds only O(log k) bits to end points.
	in := iv(1, 2, 3, 2) // [1/4, 3/4), endpoints have 2 fraction bits
	parts := in.Split(5) // N = 8, delta = (1/2)/8 = 2^-4
	for _, p := range parts {
		if p.Lo.Prec() > 5 || p.Hi.Prec() > 5 {
			t.Fatalf("Split(5) endpoint precision too large: %s", p)
		}
	}
}

func TestAddIntervalMerging(t *testing.T) {
	u := NewUnion(iv(0, 0, 1, 2), iv(1, 2, 1, 1)) // [0,1/4) + [1/4,1/2) must merge
	if u.NumIntervals() != 1 {
		t.Fatalf("adjacent intervals did not merge: %s", u)
	}
	if !u.Equal(NewUnion(iv(0, 0, 1, 1))) {
		t.Fatalf("merge produced %s", u)
	}
	u2 := NewUnion(iv(0, 0, 1, 2), iv(1, 1, 3, 2)) // disjoint, gap at [1/4,1/2)
	if u2.NumIntervals() != 2 {
		t.Fatalf("disjoint intervals merged: %s", u2)
	}
}

func TestUnionIsFull(t *testing.T) {
	parts := Full().Split(7)
	u := EmptyUnion()
	order := []int{3, 0, 6, 1, 5, 2, 4}
	for _, i := range order {
		if u.IsFull() {
			t.Fatal("IsFull before all parts added")
		}
		u = u.AddInterval(parts[i])
	}
	if !u.IsFull() {
		t.Fatalf("union of all parts not full: %s", u)
	}
}

func TestIntersectSubtractKnown(t *testing.T) {
	a := NewUnion(iv(0, 0, 1, 1)) // [0, 1/2)
	b := NewUnion(iv(1, 2, 3, 2)) // [1/4, 3/4)
	got := a.Intersect(b)         // [1/4, 1/2)
	want := NewUnion(iv(1, 2, 1, 1))
	if !got.Equal(want) {
		t.Fatalf("Intersect = %s, want %s", got, want)
	}
	got = a.Subtract(b) // [0, 1/4)
	want = NewUnion(iv(0, 0, 1, 2))
	if !got.Equal(want) {
		t.Fatalf("Subtract = %s, want %s", got, want)
	}
	got = b.Subtract(a) // [1/2, 3/4)
	want = NewUnion(iv(1, 1, 3, 2))
	if !got.Equal(want) {
		t.Fatalf("Subtract = %s, want %s", got, want)
	}
}

func TestContainsUnion(t *testing.T) {
	a := NewUnion(iv(0, 0, 1, 1), iv(3, 2, 1, 0)) // [0,1/2) ∪ [3/4,1)
	sub := NewUnion(iv(1, 3, 1, 2))               // [1/8,1/4)
	if !a.ContainsUnion(sub) {
		t.Fatal("ContainsUnion false negative")
	}
	if a.ContainsUnion(FullUnion()) {
		t.Fatal("ContainsUnion false positive")
	}
	if !a.ContainsUnion(EmptyUnion()) {
		t.Fatal("every union contains the empty union")
	}
}

func TestCanonicalPartitionMultiInterval(t *testing.T) {
	// u = [0,1/4) ∪ [1/2,5/8) ∪ [3/4,1): r = 3 intervals, d = 4 parts.
	u := NewUnion(iv(0, 0, 1, 2), iv(1, 1, 5, 3), iv(3, 2, 1, 0))
	parts := u.CanonicalPartition(4)
	if len(parts) != 4 {
		t.Fatalf("got %d parts", len(parts))
	}
	// Paper rule: first d-1 = 3 parts split I_1 = [0,1/4); last part is rest.
	for i := 0; i < 3; i++ {
		if !u.Intervals()[0].Lo.Equal(d(0, 0)) {
			t.Fatal("setup broken")
		}
		if parts[i].IsEmpty() {
			t.Fatalf("part %d empty", i)
		}
		if !NewUnion(iv(0, 0, 1, 2)).ContainsUnion(parts[i]) {
			t.Fatalf("part %d = %s escapes I_1", i, parts[i])
		}
	}
	wantLast := NewUnion(iv(1, 1, 5, 3), iv(3, 2, 1, 0))
	if !parts[3].Equal(wantLast) {
		t.Fatalf("last part = %s, want %s", parts[3], wantLast)
	}
	checkPartition(t, u, parts)
}

func TestCanonicalPartitionSingleInterval(t *testing.T) {
	// r == 1: the DESIGN.md substitution — split into d non-empty parts.
	u := FullUnion()
	parts := u.CanonicalPartition(3)
	if len(parts) != 3 {
		t.Fatalf("got %d parts", len(parts))
	}
	for i, p := range parts {
		if p.IsEmpty() {
			t.Fatalf("part %d empty; the r==1 rule must produce non-empty parts", i)
		}
	}
	checkPartition(t, u, parts)
}

func checkPartition(t *testing.T, u Union, parts []Union) {
	t.Helper()
	whole := EmptyUnion()
	for i, p := range parts {
		for j := i + 1; j < len(parts); j++ {
			if !p.Intersect(parts[j]).IsEmpty() {
				t.Fatalf("parts %d and %d overlap: %s ∩ %s", i, j, p, parts[j])
			}
		}
		whole = whole.Union(p)
	}
	if !whole.Equal(u) {
		t.Fatalf("parts do not reassemble: got %s, want %s", whole, u)
	}
}

func TestEncodeDecodeUnion(t *testing.T) {
	u := NewUnion(iv(0, 0, 1, 2), iv(1, 1, 5, 3), iv(3, 2, 1, 0))
	var w bitio.Writer
	u.Encode(&w)
	if w.Len() != u.EncodedBits() {
		t.Fatalf("EncodedBits = %d but wrote %d", u.EncodedBits(), w.Len())
	}
	got, err := DecodeUnion(bitio.NewReader(w.Bytes(), w.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(u) {
		t.Fatalf("round trip %s -> %s", u, got)
	}
}

func TestQuickUnionAlgebra(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randUnion(rng, 5, 7), randUnion(rng, 5, 7)
		// a = (a\b) ∪ (a∩b), disjointly.
		diff, inter := a.Subtract(b), a.Intersect(b)
		if !diff.Intersect(inter).IsEmpty() {
			return false
		}
		if !diff.Union(inter).Equal(a) {
			return false
		}
		// De Morgan-ish: (a∪b) \ b == a \ b.
		if !a.Union(b).Subtract(b).Equal(a.Subtract(b)) {
			return false
		}
		// Commutativity.
		return a.Union(b).Equal(b.Union(a)) && a.Intersect(b).Equal(b.Intersect(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMeasureAdditive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randUnion(rng, 4, 6), randUnion(rng, 4, 6)
		// |a| + |b| = |a∪b| + |a∩b|.
		lhs := a.Measure().Add(b.Measure())
		rhs := a.Union(b).Measure().Add(a.Intersect(b).Measure())
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCanonicalPartition(t *testing.T) {
	f := func(seed int64, dRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		u := randUnion(rng, 4, 6)
		if u.IsEmpty() {
			return true
		}
		dd := int(dRaw%6) + 1
		parts := u.CanonicalPartition(dd)
		if len(parts) != dd {
			return false
		}
		whole := EmptyUnion()
		for i, p := range parts {
			for j := i + 1; j < len(parts); j++ {
				if !p.Intersect(parts[j]).IsEmpty() {
					return false
				}
			}
			whole = whole.Union(p)
		}
		return whole.Equal(u)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEncodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := randUnion(rng, 6, 8)
		var w bitio.Writer
		u.Encode(&w)
		got, err := DecodeUnion(bitio.NewReader(w.Bytes(), w.Len()))
		return err == nil && got.Equal(u) && w.Len() == u.EncodedBits()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickContainsPointConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randUnion(rng, 4, 5), randUnion(rng, 4, 5)
		// Sample dyadic points on a fine grid and cross-check set algebra
		// against pointwise membership.
		for num := uint64(0); num < 64; num++ {
			x := dyadic.FromFrac(num, 6)
			inA, inB := a.Contains(x), b.Contains(x)
			if a.Union(b).Contains(x) != (inA || inB) {
				return false
			}
			if a.Intersect(b).Contains(x) != (inA && inB) {
				return false
			}
			if a.Subtract(b).Contains(x) != (inA && !inB) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxEndpointPrec(t *testing.T) {
	u := NewUnion(iv(1, 3, 1, 1)) // [1/8, 1/2)
	if got := u.MaxEndpointPrec(); got != 3 {
		t.Fatalf("MaxEndpointPrec = %d, want 3", got)
	}
	if EmptyUnion().MaxEndpointPrec() != 0 {
		t.Fatal("empty union should have prec 0")
	}
}
