package interval

import (
	"math/rand"
	"testing"
)

func benchUnions(n int) (Union, Union) {
	rng := rand.New(rand.NewSource(1))
	return randUnion(rng, n, 16), randUnion(rng, n, 16)
}

func BenchmarkUnion(b *testing.B) {
	for _, n := range []int{4, 32, 256} {
		x, y := benchUnions(n)
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = x.Union(y)
			}
		})
	}
}

func BenchmarkSubtract(b *testing.B) {
	for _, n := range []int{4, 32, 256} {
		x, y := benchUnions(n)
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = x.Subtract(y)
			}
		})
	}
}

func BenchmarkCanonicalPartition(b *testing.B) {
	u := FullUnion()
	for i := 0; i < 64; i++ {
		parts := u.CanonicalPartition(3)
		u = parts[0].Union(parts[2])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = u.CanonicalPartition(5)
	}
}

func sizeName(n int) string {
	return map[int]string{4: "n4", 32: "n32", 256: "n256"}[n]
}
