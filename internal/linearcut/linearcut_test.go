package linearcut

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sim"
)

func TestEnumerateLine(t *testing.T) {
	// Line(n): s -> v1 -> ... -> vn -> t. Ideals containing s and not t are
	// the prefixes {s}, {s,v1}, ..., {s,v1..vn}: n+1 cuts.
	for _, n := range []int{1, 2, 4} {
		g := graph.Line(n)
		cuts, err := Enumerate(g)
		if err != nil {
			t.Fatal(err)
		}
		if len(cuts) != n+1 {
			t.Fatalf("Line(%d): %d cuts, want %d", n, len(cuts), n+1)
		}
		for _, c := range cuts {
			if err := c.Validate(g); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestEnumerateChainValidatesAll(t *testing.T) {
	g := graph.Chain(4)
	cuts, err := Enumerate(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) == 0 {
		t.Fatal("no cuts found")
	}
	for _, c := range cuts {
		if err := c.Validate(g); err != nil {
			t.Fatal(err)
		}
		if len(c.CrossingEdges(g)) == 0 {
			t.Fatal("cut with no crossing edges")
		}
	}
}

func TestEnumerateRejectsCycles(t *testing.T) {
	if _, err := Enumerate(graph.Ring(3)); err == nil {
		t.Fatal("cyclic graph accepted")
	}
}

func TestSampleProducesValidCuts(t *testing.T) {
	g := graph.RandomDAG(20, 15, 3)
	cuts, err := Sample(g, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) < 5 {
		t.Fatalf("sampled only %d cuts", len(cuts))
	}
	for _, c := range cuts {
		if err := c.Validate(g); err != nil {
			t.Fatal(err)
		}
	}
}

// TestLemma35SurgeryTerminatesWithCutSymbols: running the protocol on the
// surgered graph G* must terminate, and the multiset of symbols entering the
// new terminal equals the snapshot on the cut — i.e. every cut snapshot is a
// terminating multiset.
func TestLemma35SurgeryTerminates(t *testing.T) {
	p := core.NewTreeBroadcast(nil, core.RulePow2)
	for _, g := range []*graph.G{graph.Chain(5), graph.KaryGroundedTree(2, 2), graph.Line(4)} {
		cuts, err := Enumerate(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cuts {
			snap, err := Snapshot(g, p, c, sim.Options{})
			if err != nil {
				t.Fatal(err)
			}
			gs, err := Surgery(g, c)
			if err != nil {
				t.Fatalf("surgery on %s: %v", g, err)
			}
			r, err := sim.Run(gs, p, sim.Options{TrackFirstSymbol: true})
			if err != nil {
				t.Fatal(err)
			}
			if r.Verdict != sim.Terminated {
				t.Fatalf("%s: G* did not terminate (cut snapshot %v)", g, snap)
			}
			// The multiset entering the new terminal is exactly the snapshot.
			gsT := gs.Terminal()
			var entering []string
			for i := 0; i < gs.InDegree(gsT); i++ {
				e := gs.InEdge(gsT, i)
				entering = append(entering, r.Metrics.FirstSymbol[e.ID])
			}
			if len(entering) != len(snap) {
				t.Fatalf("%s: %d symbols entered G*'s terminal, snapshot has %d", g, len(entering), len(snap))
			}
		}
	}
}

// TestTheorem36SplitSurgeryDoesNotTerminate: rewiring a non-empty subset of
// crossing edges to a dead-end t* must make the protocol non-terminating,
// which is the engine behind the no-strict-subset property of snapshots.
func TestTheorem36SplitSurgeryDoesNotTerminate(t *testing.T) {
	p := core.NewTreeBroadcast(nil, core.RulePow2)
	g := graph.Chain(4)
	cuts, err := Enumerate(g)
	if err != nil {
		t.Fatal(err)
	}
	tested := 0
	for _, c := range cuts {
		edges := c.CrossingEdges(g)
		if len(edges) < 2 {
			continue
		}
		// Send the last crossing edge to t*.
		toAux := map[graph.EdgeID]bool{edges[len(edges)-1].ID: true}
		gs, err := SurgerySplit(g, c, toAux)
		if err != nil {
			t.Fatal(err)
		}
		r, err := sim.Run(gs, p, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if r.Verdict != sim.Quiescent {
			t.Fatalf("split surgery terminated; a correct protocol must not (cut %v)", c.InV1)
		}
		tested++
	}
	if tested == 0 {
		t.Fatal("no multi-edge cuts tested")
	}
}

// TestTheorem36NoStrictSubset: across all cuts of a grounded tree, no
// snapshot multiset is a strict subset of another.
func TestTheorem36NoStrictSubset(t *testing.T) {
	p := core.NewTreeBroadcast(nil, core.RulePow2)
	for _, g := range []*graph.G{graph.Chain(5), graph.KaryGroundedTree(2, 2)} {
		cuts, err := Enumerate(g)
		if err != nil {
			t.Fatal(err)
		}
		snaps := make([]map[string]int, len(cuts))
		for i, c := range cuts {
			snap, err := Snapshot(g, p, c, sim.Options{})
			if err != nil {
				t.Fatal(err)
			}
			ms := map[string]int{}
			for _, s := range snap {
				ms[s]++
			}
			snaps[i] = ms
		}
		for i := range snaps {
			for j := range snaps {
				if i == j {
					continue
				}
				if strictSubset(snaps[i], snaps[j]) {
					t.Fatalf("%s: snapshot %d is a strict subset of snapshot %d (%v ⊂ %v)",
						g, i, j, snaps[i], snaps[j])
				}
			}
		}
	}
}

func strictSubset(a, b map[string]int) bool {
	total := 0
	for k, ca := range a {
		if ca > b[k] {
			return false
		}
		total += ca
	}
	btotal := 0
	for _, cb := range b {
		btotal += cb
	}
	return total < btotal
}

// TestLemma37AncestorSymbolsDiffer: on the chain G_n, the symbol on an
// ancestor spine edge differs from any descendant spine edge's symbol.
func TestLemma37AncestorSymbolsDiffer(t *testing.T) {
	g := graph.Chain(6)
	r, err := sim.Run(g, core.NewTreeBroadcast(nil, core.RulePow2), sim.Options{TrackFirstSymbol: true})
	if err != nil {
		t.Fatal(err)
	}
	// Spine edges are s->v1 and v_i->v_{i+1}; every consecutive pair is
	// separated by an out-degree-2 vertex.
	var spine []graph.EdgeID
	for _, e := range g.Edges() {
		if e.To != g.Terminal() {
			spine = append(spine, e.ID)
		}
	}
	for i := range spine {
		for j := i + 1; j < len(spine); j++ {
			si, sj := r.Metrics.FirstSymbol[spine[i]], r.Metrics.FirstSymbol[spine[j]]
			if si == sj {
				t.Fatalf("spine edges %d and %d carry the same symbol %q", i, j, si)
			}
		}
	}
}

func TestSurgeryPreservesPortOrder(t *testing.T) {
	g := graph.Chain(3)
	cuts, err := Enumerate(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cuts {
		gs, err := Surgery(g, c)
		if err != nil {
			t.Fatal(err)
		}
		// Every remapped vertex keeps its out-degree.
		n := 0
		for v := 0; v < g.NumVertices(); v++ {
			if c.InV1[v] {
				if gs.OutDegree(graph.VertexID(n)) != g.OutDegree(graph.VertexID(v)) {
					t.Fatalf("vertex %d out-degree changed under surgery", v)
				}
				n++
			}
		}
	}
}
