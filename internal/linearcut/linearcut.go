// Package linearcut implements the linear-cut machinery of the paper's lower
// bound proofs (Definition 3.4, Lemmas 3.5 and 3.7, Theorem 3.6, Figures
// 1-3).
//
// A linear cut of a DAG partitions V into V1 ∪ V2 such that no V1 vertex is
// a descendant of a V2 vertex — equivalently, V1 is closed under ancestors
// (an order ideal containing s, with t in V2). The edges crossing a cut are
// a possible asynchronous snapshot of the protocol: the multiset of symbols
// on them must itself be terminating (Lemma 3.5), which is what forces large
// alphabets (Theorem 3.6, Lemma 3.7).
//
// This package enumerates and samples linear cuts, snapshots the symbols a
// protocol puts on them, and performs the paper's cut surgery: building the
// graph G* in which the crossing edges are rewired into the terminal
// (Figure 1), optionally splitting them between t and an auxiliary dead-end
// t* (Figure 2).
package linearcut

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/protocol"
	"repro/internal/sim"
)

// Cut is a linear cut, represented by the V1 membership vector.
type Cut struct {
	InV1 []bool
}

// CrossingEdges returns the edges from V1 to V2 in g.
func (c Cut) CrossingEdges(g *graph.G) []graph.Edge {
	var out []graph.Edge
	for _, e := range g.Edges() {
		if c.InV1[e.From] && !c.InV1[e.To] {
			out = append(out, e)
		}
	}
	return out
}

// Validate reports whether c is a linear cut of g: V1 is ancestor-closed,
// non-empty, and excludes t.
func (c Cut) Validate(g *graph.G) error {
	if len(c.InV1) != g.NumVertices() {
		return fmt.Errorf("linearcut: cut size %d != |V| %d", len(c.InV1), g.NumVertices())
	}
	if !c.InV1[g.Root()] {
		return fmt.Errorf("linearcut: root not in V1")
	}
	if c.InV1[g.Terminal()] {
		return fmt.Errorf("linearcut: terminal in V1")
	}
	for _, e := range g.Edges() {
		if c.InV1[e.To] && !c.InV1[e.From] {
			return fmt.Errorf("linearcut: V1 not ancestor-closed at edge %d->%d", e.From, e.To)
		}
	}
	return nil
}

// Enumerate returns every linear cut of the DAG g. The number of cuts is the
// number of order ideals, which can be exponential: intended for the small
// graphs of the lower-bound experiments. It returns an error if g is cyclic.
func Enumerate(g *graph.G) ([]Cut, error) {
	order, ok := g.TopoOrder()
	if !ok {
		return nil, fmt.Errorf("linearcut: %s is cyclic", g)
	}
	// Grow ideals vertex by vertex in topological order: each vertex may be
	// added only if all its in-neighbours are in.
	n := g.NumVertices()
	var cuts []Cut
	var rec func(idx int, cur []bool)
	rec = func(idx int, cur []bool) {
		if idx == len(order) {
			// Valid cut iff root in V1 and terminal out.
			if cur[g.Root()] && !cur[g.Terminal()] {
				cuts = append(cuts, Cut{InV1: append([]bool(nil), cur...)})
			}
			return
		}
		v := order[idx]
		// Option 1: v not in V1; then no descendant of v may be added, but
		// instead of tracking that, rely on the closure check when adding.
		rec(idx+1, cur)
		// Option 2: v in V1, allowed only if all in-neighbours are in V1.
		okAdd := true
		for i := 0; i < g.InDegree(v); i++ {
			if !cur[g.InEdge(v, i).From] {
				okAdd = false
				break
			}
		}
		if okAdd {
			cur[v] = true
			rec(idx+1, cur)
			cur[v] = false
		}
	}
	rec(0, make([]bool, n))
	return cuts, nil
}

// Sample returns up to k random linear cuts of the DAG g, drawn by a random
// topological-prefix-with-closure walk.
func Sample(g *graph.G, k int, seed int64) ([]Cut, error) {
	order, ok := g.TopoOrder()
	if !ok {
		return nil, fmt.Errorf("linearcut: %s is cyclic", g)
	}
	rng := rand.New(rand.NewSource(seed))
	seen := map[string]bool{}
	var cuts []Cut
	for attempt := 0; attempt < 20*k && len(cuts) < k; attempt++ {
		cur := make([]bool, g.NumVertices())
		for _, v := range order {
			okAdd := true
			for i := 0; i < g.InDegree(v); i++ {
				if !cur[g.InEdge(v, i).From] {
					okAdd = false
					break
				}
			}
			if okAdd && v != g.Terminal() && (v == g.Root() || rng.Intn(2) == 0) {
				cur[v] = true
			}
		}
		if !cur[g.Root()] {
			continue
		}
		key := fmt.Sprint(cur)
		if seen[key] {
			continue
		}
		seen[key] = true
		cuts = append(cuts, Cut{InV1: cur})
	}
	return cuts, nil
}

// Snapshot runs protocol p on g to completion under the given options and
// returns the multiset of symbol keys transmitted on the cut's crossing
// edges. On grounded trees each edge carries exactly one symbol (Lemma 3.3),
// so the multiset is well defined; for other graphs the first symbol per
// edge is reported.
func Snapshot(g *graph.G, p protocol.Protocol, c Cut, opts sim.Options) ([]string, error) {
	opts.TrackAlphabet = true
	opts.TrackFirstSymbol = true
	r, err := sim.Run(g, p, opts)
	if err != nil {
		return nil, err
	}
	edges := c.CrossingEdges(g)
	out := make([]string, 0, len(edges))
	for _, e := range edges {
		k, ok := r.Metrics.FirstSymbol[e.ID]
		if !ok {
			return nil, fmt.Errorf("linearcut: edge %d->%d carried no symbol", e.From, e.To)
		}
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}

// Surgery builds the graph G* of Lemma 3.5 (Figure 1): V1 plus a fresh
// terminal, with every edge crossing the cut rewired into the new terminal.
// Out-ports of V1 vertices keep their original order, so an anonymous
// protocol cannot distinguish G* from G until messages cross the cut.
func Surgery(g *graph.G, c Cut) (*graph.G, error) {
	if err := c.Validate(g); err != nil {
		return nil, err
	}
	return surgery(g, c, nil)
}

// SurgerySplit builds the graph of Theorem 3.6's proof (Figure 2): like
// Surgery, but crossing edges whose IDs appear in toAux are rewired to an
// auxiliary dead-end vertex t* instead of the terminal. If toAux is
// non-empty the resulting graph must make a correct protocol non-terminating.
func SurgerySplit(g *graph.G, c Cut, toAux map[graph.EdgeID]bool) (*graph.G, error) {
	if err := c.Validate(g); err != nil {
		return nil, err
	}
	return surgery(g, c, toAux)
}

func surgery(g *graph.G, c Cut, toAux map[graph.EdgeID]bool) (*graph.G, error) {
	// Map old V1 vertices to new IDs.
	remap := make([]graph.VertexID, g.NumVertices())
	n := 0
	for v := 0; v < g.NumVertices(); v++ {
		if c.InV1[v] {
			remap[v] = graph.VertexID(n)
			n++
		}
	}
	total := n + 1 // + new terminal
	aux := graph.VertexID(-1)
	if len(toAux) > 0 {
		total++
		aux = graph.VertexID(n + 1)
	}
	b := graph.NewBuilder(total).SetName(g.Name() + "*")
	newT := graph.VertexID(n)
	b.SetRoot(remap[g.Root()]).SetTerminal(newT)
	// Preserve out-port order: iterate vertices and their out-ports.
	for v := 0; v < g.NumVertices(); v++ {
		if !c.InV1[v] {
			continue
		}
		for j := 0; j < g.OutDegree(graph.VertexID(v)); j++ {
			e := g.OutEdge(graph.VertexID(v), j)
			switch {
			case c.InV1[e.To]:
				b.AddEdge(remap[v], remap[e.To])
			case toAux[e.ID]:
				b.AddEdge(remap[v], aux)
			default:
				b.AddEdge(remap[v], newT)
			}
		}
	}
	if aux >= 0 {
		// t* must reach nothing: it is a dead end by construction. Its edges
		// to t would defeat the purpose; there are none.
		_ = aux
	}
	return b.Build()
}
