package fuzz

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/replay"
)

// A mutant is one candidate nearby schedule derived from a recorded trace.
type Mutant struct {
	// Name identifies the mutator that produced the candidate.
	Name string
	// Deliveries is the candidate delivery schedule. It is a *hypothesis*:
	// entries the perturbed run cannot execute are skipped by the completing
	// replayer, and a fallback adversary finishes the run.
	Deliveries []graph.EdgeID
}

// MutatorNames lists the implemented mutation operators in application
// order: swap two adjacent deliveries whose order the happens-before
// relation does not fix, promote a later pending delivery to an earlier
// slot, splice the prefix of one schedule onto the suffix of another, and
// truncate the tail (letting the fallback regenerate it).
func MutatorNames() []string {
	return []string{"swap-adjacent", "promote-pending", "splice-prefix", "truncate-tail"}
}

// traceIndex is the happens-before view of a recorded event stream: for
// every delivery it knows the event position of the delivery itself and of
// the send that produced the delivered message. Per-edge FIFO makes the
// matching exact — the k-th delivery on an edge consumes the k-th send on
// it. A mutation that moves a delivery before its own send can never
// execute; the index lets mutators propose only causally possible
// reorderings.
type traceIndex struct {
	deliveries []graph.EdgeID
	evPos      []int // event-stream position of the k-th delivery
	sendPos    []int // event-stream position of the send it consumes (-1 if the stream lacks it)
}

func indexTrace(tr *replay.Trace) *traceIndex {
	// Pre-size everything from one counting pass: per-edge send positions
	// live in a CSR-style flat array (offsets + fill cursors) and the
	// delivery columns are allocated at their exact final length, so
	// indexing a trace costs a handful of allocations however long the
	// schedule is — this index is rebuilt for every fuzz seed.
	maxE, nSend, nDeliver := -1, 0, 0
	for _, ev := range tr.Events {
		if int(ev.Edge) > maxE {
			maxE = int(ev.Edge)
		}
		switch ev.Kind {
		case replay.Send:
			nSend++
		case replay.Deliver:
			nDeliver++
		}
	}
	off := make([]int32, maxE+2) // off[e+1] accumulates edge e's send count
	for _, ev := range tr.Events {
		if ev.Kind == replay.Send {
			off[ev.Edge+1]++
		}
	}
	for e := 0; e <= maxE; e++ {
		off[e+1] += off[e]
	}
	sendPos := make([]int, nSend)
	fill := make([]int32, maxE+1)      // sends recorded per edge so far
	delivered := make([]int32, maxE+1) // deliveries consumed per edge so far
	ix := &traceIndex{
		deliveries: make([]graph.EdgeID, 0, nDeliver),
		evPos:      make([]int, 0, nDeliver),
		sendPos:    make([]int, 0, nDeliver),
	}
	for pos, ev := range tr.Events {
		switch ev.Kind {
		case replay.Send:
			sendPos[off[ev.Edge]+fill[ev.Edge]] = pos
			fill[ev.Edge]++
		case replay.Deliver:
			k := delivered[ev.Edge]
			delivered[ev.Edge]++
			sp := -1
			if k < off[ev.Edge+1]-off[ev.Edge] {
				sp = sendPos[off[ev.Edge]+k]
			}
			ix.deliveries = append(ix.deliveries, ev.Edge)
			ix.evPos = append(ix.evPos, pos)
			ix.sendPos = append(ix.sendPos, sp)
		}
	}
	return ix
}

// swappable reports whether deliveries i and i+1 commute causally: they are
// on different edges and the later delivery's message was already in flight
// before the earlier delivery happened, so executing them in either order
// is a valid schedule. (When both target the same vertex the receive order
// still changes — that is the perturbation the invariance oracle is for.)
func (ix *traceIndex) swappable(i int) bool {
	if ix.deliveries[i] == ix.deliveries[i+1] {
		return false // same edge: FIFO fixes the order
	}
	return ix.sendPos[i+1] >= 0 && ix.sendPos[i+1] < ix.evPos[i]
}

// mutateSwapAdjacent exchanges one random causally independent adjacent
// delivery pair.
func mutateSwapAdjacent(rng *rand.Rand, ix *traceIndex) ([]graph.EdgeID, bool) {
	n := len(ix.deliveries)
	if n < 2 {
		return nil, false
	}
	// Random probe position, scanning forward (with wraparound) for a
	// swappable pair so sparse opportunities are still found.
	start := rng.Intn(n - 1)
	for off := 0; off < n-1; off++ {
		i := (start + off) % (n - 1)
		if ix.swappable(i) {
			out := append([]graph.EdgeID(nil), ix.deliveries...)
			out[i], out[i+1] = out[i+1], out[i]
			return out, true
		}
	}
	return nil, false
}

// mutatePromotePending picks a later delivery whose message was already
// pending at an earlier slot and delivers it there instead, shifting the
// displaced deliveries one slot later. This retargets the adversary's
// choice at that step to a different pending edge.
func mutatePromotePending(rng *rand.Rand, ix *traceIndex) ([]graph.EdgeID, bool) {
	n := len(ix.deliveries)
	if n < 2 {
		return nil, false
	}
	for attempt := 0; attempt < 16; attempt++ {
		i := rng.Intn(n - 1)
		j := i + 1 + rng.Intn(n-1-i)
		// The promoted message must have been in flight before slot i.
		if ix.sendPos[j] < 0 || ix.sendPos[j] >= ix.evPos[i] {
			continue
		}
		out := make([]graph.EdgeID, 0, n)
		out = append(out, ix.deliveries[:i]...)
		out = append(out, ix.deliveries[j])
		out = append(out, ix.deliveries[i:j]...)
		out = append(out, ix.deliveries[j+1:]...)
		return out, true
	}
	return nil, false
}

// mutateSplicePrefix glues a random prefix of the seed schedule onto a
// random suffix of a mate schedule recorded on the same graph and protocol
// (possibly the seed itself at a different cut), crossing two observed
// adversaries mid-run.
func mutateSplicePrefix(rng *rand.Rand, ix *traceIndex, mates [][]graph.EdgeID) ([]graph.EdgeID, bool) {
	if len(ix.deliveries) == 0 || len(mates) == 0 {
		return nil, false
	}
	mate := mates[rng.Intn(len(mates))]
	if len(mate) == 0 {
		return nil, false
	}
	i := rng.Intn(len(ix.deliveries) + 1)
	j := rng.Intn(len(mate) + 1)
	out := make([]graph.EdgeID, 0, i+len(mate)-j)
	out = append(out, ix.deliveries[:i]...)
	out = append(out, mate[j:]...)
	if len(out) == 0 {
		return nil, false
	}
	return out, true
}

// mutateTruncateTail keeps a random proper prefix; the completing
// replayer's fallback adversary regenerates the rest of the run, yielding a
// schedule that follows the recording up to the cut and a deterministic
// adversary afterwards.
func mutateTruncateTail(rng *rand.Rand, ix *traceIndex) ([]graph.EdgeID, bool) {
	n := len(ix.deliveries)
	if n < 1 {
		return nil, false
	}
	cut := rng.Intn(n)
	return append([]graph.EdgeID(nil), ix.deliveries[:cut]...), true
}

// nextMutant draws one mutant from the seed trace. mates are delivery
// schedules of other traces on the same graph and protocol, used by the
// splice operator. The rng fully determines the choice, so a campaign is
// reproducible from its seed.
func nextMutant(rng *rand.Rand, ix *traceIndex, mates [][]graph.EdgeID) (Mutant, bool) {
	names := MutatorNames()
	pick := rng.Intn(len(names))
	for off := 0; off < len(names); off++ {
		name := names[(pick+off)%len(names)]
		var (
			ds []graph.EdgeID
			ok bool
		)
		switch name {
		case "swap-adjacent":
			ds, ok = mutateSwapAdjacent(rng, ix)
		case "promote-pending":
			ds, ok = mutatePromotePending(rng, ix)
		case "splice-prefix":
			ds, ok = mutateSplicePrefix(rng, ix, mates)
		case "truncate-tail":
			ds, ok = mutateTruncateTail(rng, ix)
		}
		if ok {
			return Mutant{Name: name, Deliveries: ds}, true
		}
	}
	return Mutant{}, false
}
