package fuzz

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/protocol"
	"repro/internal/replay"
	"repro/internal/sim"
)

// FuzzMutatorValidity is the native fuzz target on the mutator + validity
// checker chain: for ANY rng seed and mutation depth, the mutant produced
// from a recorded schedule must execute to a real verdict under the
// completing replayer with no engine error, and the schedule it actually
// executed must be a complete, strict-mode-replayable trace that replays
// byte-identically. This is the property that makes every fuzz verdict
// comparison meaningful — an invalid mutant would make the oracle compare
// garbage.
func FuzzMutatorValidity(f *testing.F) {
	g := graph.Ring(5)
	newProto := func() protocol.Protocol { return core.NewGeneralBroadcast([]byte("m")) }
	sched, err := sim.NewScheduler("random")
	if err != nil {
		f.Fatal(err)
	}
	rec := replay.NewRecorder()
	if _, err := sim.Run(g, newProto(), sim.Options{Scheduler: sched, Seed: 7, Observer: rec}); err != nil {
		f.Fatal(err)
	}
	tr := rec.Trace(g, "generalcast", "random", 7)
	ix := indexTrace(tr)
	mates := [][]graph.EdgeID{ix.deliveries}

	f.Add(int64(1), uint8(1))
	f.Add(int64(42), uint8(3))
	f.Add(int64(-7), uint8(8))

	f.Fuzz(func(t *testing.T, rngSeed int64, depth uint8) {
		mut, ok := stackMutations(rngSeed, ix, mates, int(depth%8)+1)
		if !ok {
			return
		}
		fb, err := sim.NewScheduler("fifo")
		if err != nil {
			t.Fatal(err)
		}
		comp := replay.NewCompletingReplayer(mut, fb)
		rec := replay.NewRecorder()
		r, err := sim.Run(g, newProto(), sim.Options{Scheduler: comp, Seed: 7, Observer: rec})
		if err != nil {
			t.Fatalf("mutant run errored: %v", err)
		}
		if r.Verdict != sim.Terminated && r.Verdict != sim.Quiescent {
			t.Fatalf("mutant run has no verdict (%v)", r.Verdict)
		}
		// The executed schedule is complete by construction; it must replay
		// strictly and byte-identically.
		exec := rec.Trace(g, "generalcast", "fuzz", 7)
		rec2 := replay.NewRecorder()
		if _, err := replay.Run(g, newProto(), exec, sim.Options{Observer: rec2}); err != nil {
			t.Fatalf("executed mutant schedule does not strict-replay: %v", err)
		}
		re := rec2.Trace(g, "generalcast", "fuzz", 7)
		if !bytes.Equal(replay.Encode(exec), replay.Encode(re)) {
			t.Fatal("executed mutant schedule replay is not byte-identical")
		}
	})
}

// stackMutations applies depth successive mutations, re-indexing the
// resulting delivery-only schedule between rounds (delivery-only traces
// carry no send events, so only send-independent mutators fire after the
// first round — that is fine, the target is the validity chain).
func stackMutations(rngSeed int64, ix *traceIndex, mates [][]graph.EdgeID, depth int) ([]graph.EdgeID, bool) {
	rng := rand.New(rand.NewSource(rngSeed))
	cur := ix
	var out []graph.EdgeID
	any := false
	for d := 0; d < depth; d++ {
		mut, ok := nextMutant(rng, cur, mates)
		if !ok {
			break
		}
		any = true
		out = mut.Deliveries
		// Rebuild a delivery-only index for the next round.
		evs := make([]replay.Event, len(out))
		for i, e := range out {
			evs[i] = replay.Event{Kind: replay.Deliver, Edge: e}
		}
		cur = indexTrace(&replay.Trace{Events: evs})
	}
	return out, any
}
