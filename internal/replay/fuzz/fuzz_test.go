package fuzz

import (
	"os"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/protocol"
	"repro/internal/replay"
	"repro/internal/sim"
)

// TestFuzzCorpusSmoke is the CI fuzz tier: it loads the committed trace
// corpus (the same files that pin the codec) as the seed pool and runs a
// bounded differential campaign over it — N mutants per seed, outcome
// invariance demanded for every one. ANON_FUZZ_MUTATIONS overrides the
// budget so CI can scale it without a code change.
func TestFuzzCorpusSmoke(t *testing.T) {
	seeds, err := Corpus("../testdata")
	if err != nil {
		t.Fatal(err)
	}
	mutations := 16
	if s := os.Getenv("ANON_FUZZ_MUTATIONS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad ANON_FUZZ_MUTATIONS=%q", s)
		}
		mutations = n
	}
	rep, err := Campaign(seeds, Options{Mutations: mutations, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep)
	if rep.Seeds != len(seeds) {
		t.Errorf("fuzzed %d seeds, corpus has %d", rep.Seeds, len(seeds))
	}
	if rep.Mutants < rep.Seeds { // every corpus trace is long enough to mutate
		t.Errorf("only %d mutants ran over %d seeds", rep.Mutants, rep.Seeds)
	}
	for _, v := range rep.Violations {
		t.Errorf("invariance violation under %s:\n got: %s\nwant: %s", v.Mutation, v.Got, v.Want)
	}
}

// TestCampaignDeterministic: same seed pool, same options — byte-identical
// campaign (mutant counts and skipped/completed tallies included), so a CI
// failure is reproducible locally from the logged options alone.
func TestCampaignDeterministic(t *testing.T) {
	seeds, err := Corpus("../testdata")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Campaign(seeds[:3], Options{Mutations: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Campaign(seeds[:3], Options{Mutations: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() || len(a.Violations) != len(b.Violations) {
		t.Fatalf("campaign not deterministic:\n a: %s\n b: %s", a, b)
	}
}

// TestCampaignGroupsByNumbering: two traces recorded on isomorphic networks
// with different edge numbering share a graph fingerprint but not an
// edge-ID space. Campaign must fuzz each on its own embedded graph instead
// of lumping them into one group and replaying one schedule against the
// other's numbering.
func TestCampaignGroupsByNumbering(t *testing.T) {
	a := graph.Line(3)
	// The same path, edges inserted in reverse order: isomorphic (same
	// fingerprint) but edge IDs are numbered back to front.
	bb := graph.NewBuilder(5)
	bb.AddEdge(3, 4).AddEdge(2, 3).AddEdge(1, 2).AddEdge(0, 1)
	bb.SetRoot(0).SetTerminal(4).SetName("line-renumbered")
	b, err := bb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("test premise broken: fingerprints differ (%016x vs %016x)", a.Fingerprint(), b.Fingerprint())
	}
	if string(a.MarshalText()) == string(b.MarshalText()) {
		t.Fatal("test premise broken: graphs share a numbering")
	}
	var seeds []*replay.Trace
	for _, g := range []*graph.G{a, b} {
		sched, err := sim.NewScheduler("fifo")
		if err != nil {
			t.Fatal(err)
		}
		rec := replay.NewRecorder()
		if _, err := sim.Run(g, core.NewGeneralBroadcast([]byte("m")), sim.Options{Scheduler: sched, Observer: rec}); err != nil {
			t.Fatal(err)
		}
		seeds = append(seeds, rec.Trace(g, "generalcast", "fifo", 0))
	}
	rep, err := Campaign(seeds, Options{Mutations: 4, Seed: 1})
	if err != nil {
		t.Fatalf("campaign over renumbered isomorphic seeds: %v", err)
	}
	if rep.Seeds != 2 {
		t.Fatalf("fuzzed %d seeds, want 2", rep.Seeds)
	}
	for _, v := range rep.Violations {
		t.Errorf("spurious violation under %s:\n got: %s\nwant: %s", v.Mutation, v.Got, v.Want)
	}
}

// --- injected invariance violation ------------------------------------------

// orderMsg is a minimal one-bit message for the race protocol.
type orderMsg struct{}

func (orderMsg) Bits() int   { return 1 }
func (orderMsg) Key() string { return "o" }

// raceProto is a deliberately schedule-DEPENDENT protocol — the negative
// control for the fuzzer. Internal vertices flood the first message they
// see; the terminal declares termination only if its first message arrived
// on in-port 0 and it has since received a second message. On a diamond
// graph the verdict therefore depends on which in-edge of the terminal
// delivers first: a genuine invariance violation for the oracle to find.
type raceProto struct{}

func (raceProto) Name() string                     { return "racecast" }
func (raceProto) InitialMessage() protocol.Message { return orderMsg{} }
func (raceProto) NewNode(inDeg, outDeg int, role protocol.Role) protocol.Node {
	if role == protocol.RoleTerminal {
		return &raceTerm{}
	}
	return &raceNode{outDeg: outDeg}
}

type raceNode struct {
	outDeg int
	seen   bool
}

func (n *raceNode) Receive(protocol.Message, int) ([]protocol.Message, error) {
	if n.seen {
		return nil, nil
	}
	n.seen = true
	outs := make([]protocol.Message, n.outDeg)
	for i := range outs {
		outs[i] = orderMsg{}
	}
	return outs, nil
}

type raceTerm struct {
	got       int
	firstPort int
}

func (t *raceTerm) Receive(_ protocol.Message, port int) ([]protocol.Message, error) {
	if t.got == 0 {
		t.firstPort = port
	}
	t.got++
	return nil, nil
}

func (t *raceTerm) Done() bool  { return t.got >= 2 && t.firstPort == 0 }
func (t *raceTerm) Output() any { return "port0-first" }

// diamond builds s -> a; a -> b, a -> c; b -> t (in-port 0), c -> t
// (in-port 1).
func diamond(t *testing.T) *graph.G {
	t.Helper()
	b := graph.NewBuilder(0)
	s := b.AddVertex()
	a := b.AddVertex()
	v1 := b.AddVertex()
	v2 := b.AddVertex()
	tt := b.AddVertex()
	b.AddEdge(s, a)
	b.AddEdge(a, v1).AddEdge(a, v2)
	b.AddEdge(v1, tt)
	b.AddEdge(v2, tt)
	b.SetRoot(s).SetTerminal(tt).SetName("diamond")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestInjectedViolationShrinksToMinimal is the end-to-end negative control:
// on a schedule-dependent protocol the fuzzer must (1) find the invariance
// violation, (2) auto-shrink it, and (3) deliver a 1-minimal repro — one
// whose every single-delivery-removed subsequence no longer reproduces the
// violating outcome.
func TestInjectedViolationShrinksToMinimal(t *testing.T) {
	g := diamond(t)
	newProto := func() protocol.Protocol { return raceProto{} }

	// Record the seed under fifo: b->t delivers before c->t, so the run
	// terminates.
	sched, err := sim.NewScheduler("fifo")
	if err != nil {
		t.Fatal(err)
	}
	rec := replay.NewRecorder()
	r, err := sim.Run(g, newProto(), sim.Options{Scheduler: sched, Observer: rec})
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != sim.Terminated {
		t.Fatalf("seed run verdict %s, want terminated", r.Verdict)
	}
	seed := rec.Trace(g, "racecast", "fifo", 0)

	rep, err := CampaignOn(g, newProto, []*replay.Trace{seed}, Options{Mutations: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) == 0 {
		t.Fatalf("fuzzer found no violation on a schedule-dependent protocol (%s)", rep)
	}
	v := rep.Violations[0]
	t.Logf("violation under %s:\n got: %s\nwant: %s", v.Mutation, v.Got, v.Want)
	if v.Shrunk == nil {
		t.Fatal("violation was not shrunk")
	}
	min := v.Shrunk.Trace
	minDs := min.Deliveries()
	t.Logf("shrunk %d -> %d deliveries", v.Shrunk.Before, v.Shrunk.After)
	if len(minDs) == 0 || len(minDs) > v.Shrunk.Before {
		t.Fatalf("shrunk trace has %d deliveries (before: %d)", len(minDs), v.Shrunk.Before)
	}

	// The repro must reproduce the violating outcome...
	failing := func(ds []graph.EdgeID) bool {
		rp := replay.NewLenientReplayer(ds)
		rr, err := sim.Run(g, newProto(), sim.Options{Scheduler: rp})
		return err == nil && rr.Verdict == sim.Quiescent && rr.AllVisited()
	}
	if !failing(minDs) {
		t.Fatal("shrunk repro does not reproduce the violating outcome")
	}
	// ...and be 1-minimal: removing any single delivery makes it pass.
	for i := range minDs {
		cand := make([]graph.EdgeID, 0, len(minDs)-1)
		cand = append(cand, minDs[:i]...)
		cand = append(cand, minDs[i+1:]...)
		if failing(cand) {
			t.Fatalf("repro is not 1-minimal: removing delivery %d still fails", i)
		}
	}
}

// TestWildSeedsFuzzable closes the loop of this PR: schedules captured from
// the concurrent engine feed straight into the differential fuzzer as
// seeds, and the paper's protocols survive their whole mutation
// neighborhood.
func TestWildSeedsFuzzable(t *testing.T) {
	g := graph.Ring(5)
	newProto := func() protocol.Protocol { return core.NewGeneralBroadcast([]byte("m")) }
	var seeds []*replay.Trace
	for i := 0; i < 3; i++ {
		_, tr, err := replay.RecordWild(sim.Concurrent(), g, newProto, sim.Options{Seed: int64(i)}, "")
		if err != nil {
			t.Fatal(err)
		}
		seeds = append(seeds, tr)
	}
	rep, err := CampaignOn(g, newProto, seeds, Options{Mutations: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep)
	for _, v := range rep.Violations {
		t.Errorf("invariance violation under %s on a wild seed:\n got: %s\nwant: %s", v.Mutation, v.Got, v.Want)
	}
	if rep.Mutants == 0 {
		t.Error("no mutants ran")
	}
}

// TestSwapAdjacentRespectsHappensBefore pins the mutator's validity
// guarantee directly: every swap it proposes exchanges deliveries on
// different edges, and the later delivery's message was already in flight
// before the earlier delivery happened.
func TestSwapAdjacentRespectsHappensBefore(t *testing.T) {
	g := graph.RandomDigraph(8, 11, graph.RandomDigraphOpts{ExtraEdges: 8, TerminalFrac: 0.3})
	sched, err := sim.NewScheduler("random")
	if err != nil {
		t.Fatal(err)
	}
	rec := replay.NewRecorder()
	if _, err := sim.Run(g, core.NewLabelAssign(nil), sim.Options{Scheduler: sched, Seed: 9, Observer: rec}); err != nil {
		t.Fatal(err)
	}
	tr := rec.Trace(g, "labelcast", "random", 9)
	ix := indexTrace(tr)
	for i := 0; i+1 < len(ix.deliveries); i++ {
		if !ix.swappable(i) {
			continue
		}
		if ix.deliveries[i] == ix.deliveries[i+1] {
			t.Fatalf("swappable pair %d shares an edge", i)
		}
		if ix.sendPos[i+1] >= ix.evPos[i] {
			t.Fatalf("swappable pair %d: delivery %d's send (event %d) does not precede delivery %d (event %d)",
				i, i+1, ix.sendPos[i+1], i, ix.evPos[i])
		}
	}
	// A swapped pair of independent deliveries must itself be executable:
	// run every swap mutant and demand the swapped prefix never skips.
	for i := 0; i+1 < len(ix.deliveries); i++ {
		if !ix.swappable(i) {
			continue
		}
		out := append([]graph.EdgeID(nil), ix.deliveries...)
		out[i], out[i+1] = out[i+1], out[i]
		fb, _ := sim.NewScheduler("fifo")
		comp := replay.NewCompletingReplayer(out[:i+2], fb)
		if _, err := sim.Run(g, core.NewLabelAssign(nil), sim.Options{Scheduler: comp, Seed: 9}); err != nil {
			t.Fatalf("swap at %d: %v", i, err)
		}
		if comp.Skipped() != 0 {
			t.Fatalf("swap at %d skipped %d deliveries in the swapped prefix", i, comp.Skipped())
		}
	}
}
