// Package fuzz is the corpus-driven differential schedule fuzzer: it
// mutates recorded delivery schedules into nearby valid schedules and
// asserts that every schedule-independent outcome of the paper — verdict,
// broadcast completeness, the labeled-vertex set, label uniqueness,
// topology isomorphism — is invariant under the perturbation.
//
// Recorded traces (from any engine, including the wild concurrent and TCP
// captures of internal/replay) are the seed pool. Each mutation operator
// perturbs the schedule while the happens-before index keeps the proposal
// causally possible; the completing replayer executes the scripted prefix
// leniently and hands the run to a deterministic fallback adversary, so
// every mutant yields a real verdict. Any outcome that differs from the
// seed's is a violation: the fuzzer re-records the offending schedule and
// delta-debugs it to a 1-minimal repro trace via replay.Shrink.
//
// The paper's theorems quantify over all asynchronous schedules, but the
// test matrix can only ever sample named adversaries. Fuzzing the
// neighborhood of observed schedules — in the spirit of self-stabilization,
// where correctness must survive perturbed communication — explores
// schedules no registered adversary generates.
package fuzz

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/graph"
	"repro/internal/protocol"
	"repro/internal/replay"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// Options configures a fuzzing campaign. The zero value is usable:
// DefaultMutations mutants per seed, fifo fallback, shrinking on.
type Options struct {
	// Mutations is the number of mutants to draw per seed trace
	// (default DefaultMutations).
	Mutations int
	// Seed drives the mutation RNG; campaigns are deterministic in it.
	Seed int64
	// Fallback names the sequential adversary that completes a mutant run
	// once the mutated script is exhausted (default "fifo").
	Fallback string
	// NoShrink skips delta-debugging violations (useful when the caller
	// only wants detection, e.g. inside another shrink loop).
	NoShrink bool
	// Reference, when non-nil, is the result of a run that already executed
	// the (single) seed schedule; the campaign scores mutants against its
	// outcome instead of re-replaying the seed. Only valid for single-seed
	// CampaignOn calls — with several seeds the reference is per-seed and
	// must be recomputed.
	Reference *sim.Result
	// Faults, when non-nil, applies the fault plan to the reference replay
	// and to every mutant run, composing the schedule fuzzer with fault
	// injection. The plan's per-(edge, send-index) determinism keeps mutant
	// runs reproducible. Campaigns under a compiled-only plan skip
	// delta-debugging even when NoShrink is false: the plan cannot ride the
	// violation trace's header, so replay.Shrink would replay candidates
	// fault-free and a shrunk trace would not witness the violation. Seeds
	// that carry their own plan (Trace.Faults) do not need this option — the
	// spec is compiled per seed, stamped into every violation trace, and
	// shrinking stays enabled because Shrink re-arms a header plan. A seed
	// with a header plan conflicts with a non-nil Faults.
	Faults *sim.Faults
	// SafetyOnly relaxes the divergence oracle to the safety half of the
	// theorems: a mutant violates only if its run errors, reports invariant
	// problems (label collisions, broken topologies), or terminates without
	// the broadcast complete. Use this with Faults: under loss, *which*
	// verdict a schedule reaches is legitimately schedule-dependent (a
	// Bernoulli coin is tied to an edge's k-th send, and mutation changes
	// which message is the k-th), but termination must never lie.
	SafetyOnly bool
}

// DefaultMutations is the per-seed mutant budget when Options.Mutations is 0.
const DefaultMutations = 32

// Violation is one observed invariance break: a nearby valid schedule on
// which the run's schedule-independent outcome differs from the seed
// trace's.
type Violation struct {
	// Mutation names the operator that produced the schedule.
	Mutation string
	// Want and Got render the seed's and the mutant's outcome footprints
	// (Outcome), or the run error.
	Want, Got string
	// Trace is the full executed mutant schedule, re-recorded and
	// self-contained — strict-replayable evidence.
	Trace *replay.Trace
	// Shrunk is the 1-minimal delta-debugged repro (nil if shrinking was
	// disabled or failed; Trace is always present).
	Shrunk *replay.ShrinkResult
}

// Report summarizes a campaign.
type Report struct {
	// Seeds and Mutants count the seed traces and the mutants executed.
	Seeds, Mutants int
	// SkippedDeliveries counts scripted entries that were not executable
	// when their turn came, summed over all mutant runs; a measure of how
	// far mutation drifted from the recorded behavior.
	SkippedDeliveries int
	// CompletedDeliveries counts deliveries appended by the fallback
	// adversary, summed over all mutant runs.
	CompletedDeliveries int
	// Violations holds every invariance break found.
	Violations []*Violation
}

// String summarizes the report in one line.
func (r *Report) String() string {
	return fmt.Sprintf("fuzz: %d seeds, %d mutants (%d deliveries skipped, %d completed), %d violations",
		r.Seeds, r.Mutants, r.SkippedDeliveries, r.CompletedDeliveries, len(r.Violations))
}

// CampaignOn fuzzes the given seed traces against the protocol factory on
// g. Every seed must verify against g and the factory's protocol name.
// Traces in seeds that share the graph fingerprint serve as splice mates
// for each other. The error return covers setup problems (bad seed, bad
// fallback name); violations are data, reported in Report.Violations.
func CampaignOn(g *graph.G, newProto func() protocol.Protocol, seeds []*replay.Trace, opts Options) (*Report, error) {
	if opts.Mutations <= 0 {
		opts.Mutations = DefaultMutations
	}
	if opts.Fallback == "" {
		opts.Fallback = "fifo"
	}
	if _, err := sim.NewScheduler(opts.Fallback); err != nil {
		return nil, err
	}
	if opts.Reference != nil && len(seeds) != 1 {
		return nil, fmt.Errorf("fuzz: Options.Reference requires exactly one seed, have %d", len(seeds))
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	rep := &Report{}
	for si, tr := range seeds {
		if err := replay.Verify(tr, g, newProto().Name()); err != nil {
			return nil, fmt.Errorf("fuzz: seed %d: %w", si, err)
		}
		// The effective plan for this seed's mutants: the trace's own header
		// plan when it carries one (stamped back into violation traces so
		// they stay self-contained), else the campaign-wide Options.Faults.
		faults, faultSpec := opts.Faults, ""
		if tr.Faults != "" {
			if opts.Faults != nil {
				return nil, fmt.Errorf("fuzz: seed %d carries fault plan %q but Options.Faults is also set", si, tr.Faults)
			}
			var err error
			if faults, _, err = scenario.CompileSpec(tr.Faults, g); err != nil {
				return nil, fmt.Errorf("fuzz: seed %d fault plan: %w", si, err)
			}
			faultSpec = tr.Faults
		}
		refR := opts.Reference
		if refR == nil {
			var err error
			refR, err = replay.Run(g, newProto(), tr, sim.Options{Faults: opts.Faults})
			if err != nil {
				return nil, fmt.Errorf("fuzz: seed %d reference replay: %w", si, err)
			}
		}
		refO, refProblems := Compute(g, refR)
		want := outcomeString(refO, refProblems)

		ix := indexTrace(tr)
		var mates [][]graph.EdgeID
		for mi, m := range seeds {
			if mi != si && sameNumbering(m, tr) {
				mates = append(mates, m.Deliveries())
			}
		}
		if len(mates) == 0 {
			mates = [][]graph.EdgeID{ix.deliveries} // self-splice
		}
		rep.Seeds++

		for mi := 0; mi < opts.Mutations; mi++ {
			mut, ok := nextMutant(rng, ix, mates)
			if !ok {
				break // seed too small to mutate at all
			}
			rep.Mutants++
			v, skipped, completed, err := runMutant(g, newProto, tr, mut, opts, faults, faultSpec, refO, refProblems, want)
			if err != nil {
				return nil, err
			}
			rep.SkippedDeliveries += skipped
			rep.CompletedDeliveries += completed
			if v != nil {
				rep.Violations = append(rep.Violations, v)
			}
		}
	}
	return rep, nil
}

// runMutant executes one mutant schedule to a verdict and compares its
// outcome footprint against the seed's. faults/faultSpec are the seed's
// effective plan as resolved by CampaignOn.
func runMutant(g *graph.G, newProto func() protocol.Protocol, seed *replay.Trace, mut Mutant,
	opts Options, faults *sim.Faults, faultSpec string, refO Outcome, refProblems []string, want string) (*Violation, int, int, error) {
	fb, err := sim.NewScheduler(opts.Fallback)
	if err != nil {
		return nil, 0, 0, err
	}
	comp := replay.NewCompletingReplayer(mut.Deliveries, fb)
	rec := replay.NewRecorder()
	r, runErr := sim.Run(g, newProto(), sim.Options{
		Scheduler: comp, Seed: seed.Seed, Observer: rec, Faults: faults,
	})
	skipped, completed := comp.Skipped(), comp.Completed()
	var (
		got      string
		diverged bool
	)
	if runErr != nil {
		got = fmt.Sprintf("error: %v", runErr)
		diverged = true
	} else {
		o, problems := Compute(g, r)
		got = outcomeString(o, problems)
		if opts.SafetyOnly {
			diverged = len(problems) > 0 || (o.Verdict == sim.Terminated && !o.AllVisited)
		} else {
			diverged = o != refO || fmt.Sprint(problems) != fmt.Sprint(refProblems)
		}
	}
	if !diverged {
		return nil, skipped, completed, nil
	}
	v := &Violation{Mutation: mut.Name, Want: want, Got: got}
	v.Trace = rec.Trace(g, seed.Protocol, "fuzz-"+mut.Name, seed.Seed)
	v.Trace.Faults = faultSpec
	// Only an errored run's recording may be partial; a run that reached a
	// verdict recorded its complete schedule, which stays strict-replayable.
	v.Trace.Truncated = runErr != nil
	// A compiled-only plan (Options.Faults) cannot ride the trace header, so
	// shrinking would replay candidates fault-free — the full trace is the
	// evidence then. A header plan (faultSpec) shrinks fine: Shrink re-arms it.
	if !opts.NoShrink && opts.Faults == nil {
		v.Shrunk = shrinkViolation(g, newProto, v.Trace, refO, refProblems, runErr, r)
	}
	return v, skipped, completed, nil
}

// shrinkViolation delta-debugs a violating schedule to a 1-minimal repro.
// The predicate demands the candidate reproduce the *observed* violating
// outcome — not merely differ from the reference, which truncated schedules
// satisfy trivially. Shrink failure is tolerated (the full trace remains as
// evidence).
func shrinkViolation(g *graph.G, newProto func() protocol.Protocol, tr *replay.Trace,
	refO Outcome, refProblems []string, runErr error, bad *sim.Result) *replay.ShrinkResult {
	var pred replay.Predicate
	if runErr != nil || bad == nil {
		pred = func(r *sim.Result, err error) bool { return err != nil }
	} else {
		badO, badProblems := Compute(g, bad)
		pred = func(r *sim.Result, err error) bool {
			if err != nil || r == nil {
				return false
			}
			o, problems := Compute(g, r)
			return o == badO && fmt.Sprint(problems) == fmt.Sprint(badProblems)
		}
	}
	res, err := replay.Shrink(g, newProto, tr, pred)
	if err != nil {
		return nil
	}
	return res
}

// sameNumbering reports whether two traces were recorded on the same
// concrete graph with the same vertex/edge numbering, so their edge-ID
// schedules are interchangeable. The fingerprint alone is not enough: it is
// isomorphism-invariant, while edge IDs are numbering-specific — two traces
// of the same ring listed in different edge order share a fingerprint but
// not a numbering. The embedded network text pins the exact numbering.
func sameNumbering(a, b *replay.Trace) bool {
	if len(a.GraphText) > 0 || len(b.GraphText) > 0 {
		return bytes.Equal(a.GraphText, b.GraphText)
	}
	return a.GraphFP == b.GraphFP // in-memory traces without embedded text
}

// Campaign fuzzes a heterogeneous seed pool: traces are grouped by
// (embedded network text, protocol) — i.e. by concrete edge numbering, not
// just isomorphism class — each group is fuzzed on its embedded graph with
// the protocol its headers name, and the group members serve as splice
// mates for each other. This is the entry point for corpus directories
// (Corpus) and the anonshrink CLI.
func Campaign(seeds []*replay.Trace, opts Options) (*Report, error) {
	type groupKey struct {
		graphText string
		proto     string
	}
	groups := make(map[groupKey][]*replay.Trace)
	var order []groupKey // deterministic iteration, first-seen order
	for _, tr := range seeds {
		k := groupKey{string(tr.GraphText), tr.Protocol}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], tr)
	}
	total := &Report{}
	for _, k := range order {
		pool := groups[k]
		g, err := pool[0].Graph()
		if err != nil {
			return nil, fmt.Errorf("fuzz: %w", err)
		}
		newProto, err := replay.ProtocolFactory(k.proto)
		if err != nil {
			return nil, err
		}
		rep, err := CampaignOn(g, newProto, pool, opts)
		if err != nil {
			return nil, err
		}
		total.Seeds += rep.Seeds
		total.Mutants += rep.Mutants
		total.SkippedDeliveries += rep.SkippedDeliveries
		total.CompletedDeliveries += rep.CompletedDeliveries
		total.Violations = append(total.Violations, rep.Violations...)
	}
	return total, nil
}

// Corpus loads every *.trace file in dir as a seed pool.
func Corpus(dir string) ([]*replay.Trace, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seeds []*replay.Trace
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".trace") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		tr, err := replay.Decode(data)
		if err != nil {
			return nil, fmt.Errorf("fuzz: %s: %w", e.Name(), err)
		}
		seeds = append(seeds, tr)
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("fuzz: no .trace files in %s", dir)
	}
	return seeds, nil
}

func outcomeString(o Outcome, problems []string) string {
	if len(problems) == 0 {
		return o.String()
	}
	return fmt.Sprintf("%s problems=%v", o, problems)
}
