package fuzz

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sim"
)

// Outcome is the schedule-independent footprint of one run: everything the
// paper proves invariant across asynchronous schedules. Metrics (bits,
// messages) are deliberately absent, and so are the concrete label values:
// *which* sub-interval of [0,1) a vertex ends up owning depends on the
// delivery order (the conformance suite itself demonstrates this — labels
// differ between fifo and lifo), while the labeled-vertex set, label
// uniqueness, and the single-interval shape of Theorem 5.1 hold under every
// schedule. The struct is comparable, so two runs agree iff their Outcomes
// are ==.
type Outcome struct {
	// Verdict is the run's verdict (terminated or quiescent).
	Verdict sim.Verdict
	// AllVisited reports whether every vertex received the broadcast.
	AllVisited bool
	// Labeled is the sorted set of vertices that received a label, rendered
	// as a string so Outcome stays comparable.
	Labeled string
	// TopoOK reports whether the extracted topology (mapcast only) is
	// isomorphic to the ground-truth graph.
	TopoOK bool
}

// String renders the footprint for diffs in failure messages.
func (o Outcome) String() string {
	return fmt.Sprintf("{verdict=%s allVisited=%v labeled=%s topoOK=%v}",
		o.Verdict, o.AllVisited, o.Labeled, o.TopoOK)
}

// Compute derives the schedule-independent footprint of a run plus a list
// of invariant violations (non-single-interval labels, label collisions,
// unreconstructable topologies). It has no testing dependency, so the
// replay shrinker and the schedule fuzzer use it as their oracle predicate
// exactly as the test matrix does.
func Compute(g *graph.G, r *sim.Result) (Outcome, []string) {
	o := Outcome{Verdict: r.Verdict, AllVisited: r.AllVisited()}
	var problems []string
	var labeled []int
	seen := make(map[string]int)
	for v, node := range r.Nodes {
		ln, ok := node.(core.Labeled)
		if !ok {
			continue
		}
		u, has := ln.Label()
		if !has {
			continue
		}
		labeled = append(labeled, v)
		if r.Verdict == sim.Terminated {
			if u.NumIntervals() != 1 {
				problems = append(problems, fmt.Sprintf("vertex %d label %s is not a single interval", v, u))
			}
			if prev, dup := seen[u.Key()]; dup {
				problems = append(problems, fmt.Sprintf("label collision: vertices %d and %d both own %s", prev, v, u))
			}
			seen[u.Key()] = v
		}
	}
	sort.Ints(labeled)
	o.Labeled = fmt.Sprint(labeled)
	if topo, ok := r.Output.(*core.Topology); ok && r.Verdict == sim.Terminated {
		gg, err := topo.ToGraph()
		if err != nil {
			problems = append(problems, fmt.Sprintf("extracted topology does not rebuild: %v", err))
		} else {
			o.TopoOK = graph.Isomorphic(g, gg)
		}
	}
	return o, problems
}
