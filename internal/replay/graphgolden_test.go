package replay

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCorpusGraphGoldens pins graph.Fingerprint and graph.CanonicalString on
// every graph embedded in the committed trace corpus, byte for byte, against
// testdata/graph_golden.tsv (generated before the CSR adjacency refactor).
// Any change to the graph core that perturbs canonical forms — and with them
// every recorded trace header — fails here rather than in a confusing replay
// mismatch. Regenerate the goldens only for a deliberate, documented format
// change (which also requires a FormatVersion bump).
func TestCorpusGraphGoldens(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "graph_golden.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	seen := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, "\t", 3)
		if len(parts) != 3 {
			t.Fatalf("malformed golden line: %q", line)
		}
		name, wantFP, wantCanon := parts[0], parts[1], parts[2]
		seen++
		data, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		tr, err := Decode(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g, err := tr.Graph()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := fmt.Sprintf("%016x", g.Fingerprint()); got != wantFP {
			t.Errorf("%s: fingerprint %s, golden %s", name, got, wantFP)
		}
		if got := g.CanonicalString(); got != wantCanon {
			t.Errorf("%s: canonical string drifted\n got: %s\nwant: %s", name, got, wantCanon)
		}
		if tr.GraphFP != g.Fingerprint() {
			t.Errorf("%s: trace header fingerprint %016x does not match recomputed %016x", name, tr.GraphFP, g.Fingerprint())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if seen == 0 {
		t.Fatal("golden file is empty")
	}
	// The golden file must cover the whole corpus: a new committed trace
	// needs a golden line (regenerate with the recipe in docs/BENCHMARKS.md).
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	traces := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".trace") {
			traces++
		}
	}
	if traces != seen {
		t.Errorf("golden file covers %d traces, corpus has %d", seen, traces)
	}
}
