package replay

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/protocol"
	"repro/internal/sim"
)

// protoCase mirrors the conformance suite: one protocol under test with a
// fresh-state factory and the graph families it applies to.
type protoCase struct {
	name   string
	make   func() protocol.Protocol
	graphs []*graph.G
}

func protoCases() []protoCase {
	trees := []*graph.G{
		graph.Line(4),
		graph.KaryGroundedTree(2, 2),
		graph.RandomGroundedTree(8, 0.3, 5),
	}
	dags := append([]*graph.G{graph.RandomDAG(8, 5, 3)}, trees...)
	general := append([]*graph.G{
		graph.Ring(5),
		graph.RandomDigraph(8, 11, graph.RandomDigraphOpts{ExtraEdges: 8, TerminalFrac: 0.3}),
	}, dags...)
	return []protoCase{
		{"treecast", func() protocol.Protocol { return core.NewTreeBroadcast([]byte("m"), core.RulePow2) }, trees},
		{"dagcast", func() protocol.Protocol { return core.NewDAGBroadcast([]byte("m")) }, dags},
		{"generalcast", func() protocol.Protocol { return core.NewGeneralBroadcast([]byte("m")) }, general},
		{"labelcast", func() protocol.Protocol { return core.NewLabelAssign(nil) }, general},
		{"mapcast", func() protocol.Protocol { return core.NewMapExtract(nil) }, general},
	}
}

// record runs p on g under the named scheduler and returns the pinned trace
// plus the run's result.
func record(t *testing.T, g *graph.G, p protocol.Protocol, schedName string, seed int64) (*Trace, *sim.Result) {
	t.Helper()
	sched, err := sim.NewScheduler(schedName)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder()
	r, err := sim.Run(g, p, sim.Options{Scheduler: sched, Seed: seed, Observer: rec})
	if err != nil {
		t.Fatalf("record %s on %s: %v", schedName, g, err)
	}
	return rec.Trace(g, p.Name(), schedName, seed), r
}

// TestReplayByteIdentical is the acceptance property: a trace recorded under
// every seeded scheduler, on every protocol × graph-family cell, replays
// through the Replayer into a byte-identical event trace (and the same
// verdict and step count).
func TestReplayByteIdentical(t *testing.T) {
	for _, pc := range protoCases() {
		for gi, g := range pc.graphs {
			for _, schedName := range sim.SchedulerNames() {
				name := fmt.Sprintf("%s/%s-%d/%s", pc.name, g.Name(), gi, schedName)
				t.Run(name, func(t *testing.T) {
					seed := int64(gi)*101 + 7
					tr, r1 := record(t, g, pc.make(), schedName, seed)
					enc := Encode(tr)

					// Replay through the decoded trace, re-recording.
					dec, err := Decode(enc)
					if err != nil {
						t.Fatalf("decode: %v", err)
					}
					rec2 := NewRecorder()
					r2, err := Run(g, pc.make(), dec, sim.Options{Observer: rec2})
					if err != nil {
						t.Fatalf("replay: %v", err)
					}
					tr2 := rec2.Trace(g, tr.Protocol, tr.Scheduler, tr.Seed)
					if !bytes.Equal(enc, Encode(tr2)) {
						t.Fatalf("replayed trace is not byte-identical (%d vs %d events)", len(tr.Events), len(tr2.Events))
					}
					if r1.Verdict != r2.Verdict || r1.Steps != r2.Steps {
						t.Fatalf("replay result diverges: %s/%d vs %s/%d", r1.Verdict, r1.Steps, r2.Verdict, r2.Steps)
					}
				})
			}
		}
	}
}

// TestCodecRoundTrip checks Encode→Decode is the identity on every header
// field, including the embedded graph.
func TestCodecRoundTrip(t *testing.T) {
	g := graph.Ring(5)
	tr, _ := record(t, g, core.NewGeneralBroadcast([]byte("m")), "random", 42)
	tr.Truncated = true // exercise the flag bit too
	dec, err := Decode(Encode(tr))
	if err != nil {
		t.Fatal(err)
	}
	if dec.GraphFP != tr.GraphFP || dec.Protocol != tr.Protocol ||
		dec.Scheduler != tr.Scheduler || dec.Seed != tr.Seed ||
		dec.Truncated != tr.Truncated || !bytes.Equal(dec.GraphText, tr.GraphText) {
		t.Fatalf("header round trip mismatch:\n got %+v\nwant %+v", dec, tr)
	}
	if len(dec.Events) != len(tr.Events) {
		t.Fatalf("event count %d, want %d", len(dec.Events), len(tr.Events))
	}
	for i := range dec.Events {
		if dec.Events[i] != tr.Events[i] {
			t.Fatalf("event %d: %+v, want %+v", i, dec.Events[i], tr.Events[i])
		}
	}
	g2, err := dec.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Isomorphic(g, g2) {
		t.Fatal("embedded graph does not reconstruct isomorphically")
	}
	if dec.Seed != 42 {
		t.Fatalf("seed %d, want 42", dec.Seed)
	}
}

// TestNegativeSeedRoundTrip pins the two's-complement seed encoding.
func TestNegativeSeedRoundTrip(t *testing.T) {
	g := graph.Line(3)
	tr, _ := record(t, g, core.NewTreeBroadcast(nil, core.RulePow2), "fifo", -12345)
	dec, err := Decode(Encode(tr))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Seed != -12345 {
		t.Fatalf("seed %d, want -12345", dec.Seed)
	}
}

// TestVerifyMismatch: replaying against the wrong graph or protocol must
// error loudly before anything runs.
func TestVerifyMismatch(t *testing.T) {
	g := graph.Ring(5)
	tr, _ := record(t, g, core.NewGeneralBroadcast([]byte("m")), "fifo", 1)

	if _, err := Run(graph.Ring(6), core.NewGeneralBroadcast([]byte("m")), tr, sim.Options{}); err == nil {
		t.Fatal("replay against a different graph did not error")
	}
	if _, err := Run(g, core.NewLabelAssign(nil), tr, sim.Options{}); err == nil {
		t.Fatal("replay with a different protocol did not error")
	}
}

// TestStrictDivergence: tampering with the recorded schedule must surface a
// divergence error from a strict replay, not silent garbage.
func TestStrictDivergence(t *testing.T) {
	g := graph.Ring(6)
	tr, _ := record(t, g, core.NewGeneralBroadcast([]byte("m")), "fifo", 1)

	// Truncate the schedule: strict replay must report leftover traffic.
	cut := &Trace{
		GraphFP: tr.GraphFP, Protocol: tr.Protocol, Scheduler: tr.Scheduler,
		Seed: tr.Seed, Events: tr.Events[:len(tr.Events)/2],
	}
	if _, err := Run(g, core.NewGeneralBroadcast([]byte("m")), cut, sim.Options{}); err == nil {
		t.Fatal("strict replay of a truncated schedule did not error")
	}

	// The same trace marked Truncated replays cleanly (lenient mode).
	cut.Truncated = true
	if _, err := Run(g, core.NewGeneralBroadcast([]byte("m")), cut, sim.Options{}); err != nil {
		t.Fatalf("lenient replay of a truncated schedule errored: %v", err)
	}

	// Prepend a delivery on an edge that cannot have a message yet (only the
	// root's out-edge is live at step one): strict replay must flag the
	// divergence immediately.
	rootEdge := g.OutEdge(g.Root(), 0).ID
	var other graph.EdgeID = -1
	for _, e := range g.Edges() {
		if e.ID != rootEdge {
			other = e.ID
			break
		}
	}
	bad := &Trace{
		GraphFP: tr.GraphFP, Protocol: tr.Protocol, Scheduler: tr.Scheduler,
		Seed: tr.Seed, Events: append([]Event{{Kind: Deliver, Edge: other}}, tr.Events...),
	}
	if _, err := Run(g, core.NewGeneralBroadcast([]byte("m")), bad, sim.Options{}); err == nil {
		t.Fatal("strict replay of an impossible schedule did not error")
	}
}
