package replay

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/protocol"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// This file is the wild-engine capture tier: schedules born outside the
// sequential engine — from the Go runtime (sim.Concurrent) or the kernel's
// loopback stack (netrun) — recorded through the engines' serialized
// observer stream and converted into traces the sequential engine replays
// byte-identically.
//
// Why a captured wild schedule is sequentially replayable at all: the
// serialized observer stream is a linearization that respects causality
// (send before its delivery, delivery before the sends it triggers), both
// tiers preserve per-edge FIFO, and the protocols are deterministic
// functions of each vertex's delivery order. Executing the captured
// delivery sequence on the sequential engine therefore reproduces the same
// per-vertex histories — and with them the same sends, the same verdict,
// and the same final states.
//
// One wrinkle remains: when a wild run terminates, worker goroutines may
// have linearized a few more deliveries between the terminating delivery
// and the instant the observer was sealed. A sequential replay stops at the
// terminating delivery, so those trailing entries make the raw capture a
// valid but slightly over-long schedule. Canonicalize resolves this with a
// single lenient replay that re-records exactly what the sequential engine
// executes, yielding a strict-mode trace.

// WildScheduler returns the provenance scheduler name recorded for captures
// from the named engine ("wild-concurrent", "wild-tcp", ...). Wild traces
// carry it in place of a sim.SchedulerNames() entry.
func WildScheduler(engineName string) string { return "wild-" + engineName }

// RecordWild runs a fresh protocol from newProto on g under eng — any engine
// that honors Options.Observer, which since the wild-capture tier is all of
// them — captures the schedule, and canonicalizes it into a strict-mode
// trace. It returns the wild run's result and the canonical trace: replaying
// the trace on the sequential engine reproduces the wild run's
// schedule-independent outcome, and re-recording that replay is
// byte-identical to the trace.
//
// opts.Observer is honored (teed with the capture recorder); opts.Scheduler
// is ignored by the wild engines themselves but opts.Seed is stamped into
// the trace header for provenance.
//
// faultSpec, when non-empty, is a scenario fault/churn spec: it is compiled
// against g, armed for the wild run AND the canonicalizing replay (replacing
// any plan already in opts — passing both is redundant, not an error), and
// stamped into the trace header in canonical form. Capture under faults is
// sound because the plan's triggers are per-edge send indices and per-vertex
// delivery indices, both of which the linearized schedule preserves.
func RecordWild(eng sim.Engine, g *graph.G, newProto func() protocol.Protocol, opts sim.Options, faultSpec string) (*sim.Result, *Trace, error) {
	if faultSpec != "" {
		faults, plan, err := scenario.CompileSpec(faultSpec, g)
		if err != nil {
			return nil, nil, fmt.Errorf("replay: wild fault plan: %w", err)
		}
		opts.Faults = faults
		faultSpec = plan.Canonical()
	}
	rec := NewRecorder()
	opts.Observer = sim.TeeObserver(rec, opts.Observer)
	r, err := eng.Run(g, newProto(), opts)
	if err != nil {
		return r, nil, fmt.Errorf("replay: wild run on %s: %w", eng.Name(), err)
	}
	wild := rec.Trace(g, newProto().Name(), WildScheduler(eng.Name()), opts.Seed)
	wild.Faults = faultSpec
	// The raw capture may carry trailing deliveries linearized after the
	// terminating one (see the file comment); mark it truncated so the
	// canonicalizing replay skips them instead of declaring divergence.
	wild.Truncated = true
	tr, r2, err := Canonicalize(g, newProto, wild)
	if err != nil {
		return r, nil, err
	}
	if r2.Verdict != r.Verdict {
		// The engines must agree on verdicts under every schedule — and the
		// replayed schedule IS the wild schedule. A mismatch here is an
		// engine bug, not a capture artifact; surface it loudly.
		return r, tr, fmt.Errorf("replay: wild %s run was %s but its sequential replay is %s (engine divergence)",
			eng.Name(), r.Verdict, r2.Verdict)
	}
	return r, tr, nil
}

// Canonicalize re-executes tr on the sequential engine (leniently, if the
// trace is marked Truncated) while re-recording, and returns the strict-mode
// trace of what actually ran plus the replay's result. The output trace
// keeps tr's provenance header (protocol, scheduler name, seed, fault plan)
// and replays byte-identically in strict mode; use it to turn a wild capture
// or a hand-edited schedule into a committable regression trace. A fault
// plan in tr's header is compiled and re-armed for the replay, and carried
// through to the output.
func Canonicalize(g *graph.G, newProto func() protocol.Protocol, tr *Trace) (*Trace, *sim.Result, error) {
	p := newProto()
	if err := Verify(tr, g, p.Name()); err != nil {
		return nil, nil, err
	}
	var faults *sim.Faults
	if tr.Faults != "" {
		var err error
		if faults, _, err = scenario.CompileSpec(tr.Faults, g); err != nil {
			return nil, nil, fmt.Errorf("replay: trace fault plan: %w", err)
		}
	}
	rec := NewRecorder()
	rep := NewReplayer(tr)
	r, err := sim.Run(g, p, sim.Options{Scheduler: rep, Seed: tr.Seed, Faults: faults, Observer: rec})
	if err != nil {
		return nil, nil, fmt.Errorf("replay: canonicalizing replay: %w", err)
	}
	if rerr := rep.Err(); rerr != nil {
		return nil, nil, fmt.Errorf("replay: canonicalizing replay: %w", rerr)
	}
	out := rec.Trace(g, tr.Protocol, tr.Scheduler, tr.Seed)
	out.Faults = tr.Faults
	return out, r, nil
}
