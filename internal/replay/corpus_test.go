package replay

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

var updateCorpus = flag.Bool("update-corpus", false,
	"re-record the testdata/ trace corpus (run after an intentional format change)")

// corpusCases spans the protocol classes and a spread of schedulers; the
// recorded files pin the trace format AND the engines' event streams: a
// change that breaks either makes TestCorpusReplays fail, which is the
// signal to bump FormatVersion and regenerate with -update-corpus.
var corpusCases = []struct {
	file  string
	graph func() *graph.G
	proto string // replay.ProtocolFactory name
	sched string
	seed  int64
}{
	{"treecast-pow2-karytree.trace", func() *graph.G { return graph.KaryGroundedTree(2, 2) }, "treecast/pow2", "fifo", 1},
	{"treecast-naive-randtree.trace", func() *graph.G { return graph.RandomGroundedTree(7, 0.3, 5) }, "treecast/naive", "lifo", 2},
	{"dagcast-randdag.trace", func() *graph.G { return graph.RandomDAG(7, 4, 3) }, "dagcast", "random", 3},
	{"generalcast-ring.trace", func() *graph.G { return graph.Ring(6) }, "generalcast", "starve-oldest", 4},
	{"generalcast-layered.trace", func() *graph.G { return graph.LayeredDigraph(3, 3, 7) }, "generalcast", "latency-pareto", 5},
	{"labelcast-randnet.trace", func() *graph.G {
		return graph.RandomDigraph(8, 11, graph.RandomDigraphOpts{ExtraEdges: 8, TerminalFrac: 0.3})
	}, "labelcast", "greedy", 6},
	{"mapcast-ring.trace", func() *graph.G { return graph.Ring(4) }, "mapcast", "rr-vertex", 7},
}

// TestCorpusReplays decodes every committed trace, rebuilds the graph and
// protocol from the file alone, replays it strictly, and demands the
// re-recorded trace be byte-identical to the file. Any accidental
// incompatible change to the codec, the fingerprint, the engine, a protocol
// or a scheduler shows up here before it can orphan traces in the wild.
func TestCorpusReplays(t *testing.T) {
	if *updateCorpus {
		writeCorpus(t)
	}
	for _, c := range corpusCases {
		t.Run(c.file, func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join("testdata", c.file))
			if err != nil {
				t.Fatalf("%v (regenerate with go test ./internal/replay -run TestCorpusReplays -update-corpus)", err)
			}
			tr, err := Decode(data)
			if err != nil {
				t.Fatal(err)
			}
			if tr.Protocol != c.proto || tr.Scheduler != c.sched || tr.Seed != c.seed {
				t.Fatalf("header drifted: %s/%s/%d, want %s/%s/%d",
					tr.Protocol, tr.Scheduler, tr.Seed, c.proto, c.sched, c.seed)
			}
			g, err := tr.Graph()
			if err != nil {
				t.Fatal(err)
			}
			newProto, err := ProtocolFactory(tr.Protocol)
			if err != nil {
				t.Fatal(err)
			}
			rec := NewRecorder()
			if _, err := Run(g, newProto(), tr, sim.Options{Observer: rec}); err != nil {
				t.Fatalf("replay: %v", err)
			}
			tr2 := rec.Trace(g, tr.Protocol, tr.Scheduler, tr.Seed)
			if !bytes.Equal(data, Encode(tr2)) {
				t.Fatalf("replay of %s is not byte-identical to the committed trace", c.file)
			}
		})
	}
}

func writeCorpus(t *testing.T) {
	t.Helper()
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	for _, c := range corpusCases {
		g := c.graph()
		newProto, err := ProtocolFactory(c.proto)
		if err != nil {
			t.Fatal(err)
		}
		tr, _ := record(t, g, newProto(), c.sched, c.seed)
		if err := os.WriteFile(filepath.Join("testdata", c.file), Encode(tr), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote testdata/%s (%d events)", c.file, len(tr.Events))
	}
}
