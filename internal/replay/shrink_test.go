package replay

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/protocol"
	"repro/internal/sim"
)

// TestShrinkMinimalPrefix is the shrinker acceptance test: a synthetic
// "divergence" (a predicate on a far vertex being reached) injected on a
// ≥1k-delivery random-scheduler trace must shrink deterministically to a
// 1-minimal failing sequence — removing any single delivery makes the
// predicate pass — well inside the 10 s budget.
func TestShrinkMinimalPrefix(t *testing.T) {
	g := graph.RandomDigraph(60, 11, graph.RandomDigraphOpts{ExtraEdges: 120, TerminalFrac: 0.2})
	newProto := func() protocol.Protocol { return core.NewGeneralBroadcast([]byte("m")) }

	tr, r := record(t, g, newProto(), "random", 3)
	if r.Steps < 1000 {
		t.Fatalf("trace too small for the acceptance bound: %d deliveries", r.Steps)
	}

	// The injected failure: some vertex far from the root got the broadcast.
	// Finding the minimal delivery sequence that still reaches it is the
	// same search as minimizing a real conformance divergence.
	target := farthestVertex(g)
	pred := func(r *sim.Result, err error) bool {
		return err == nil && r != nil && r.Visited[target]
	}

	start := time.Now()
	res, err := Shrink(g, newProto, tr, pred)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("shrink took %v, budget 10s", elapsed)
	}
	t.Logf("shrunk %d -> %d deliveries in %v (%d oracle runs)", res.Before, res.After, elapsed, res.Runs)
	if res.After >= res.Before {
		t.Fatalf("no reduction: %d -> %d", res.Before, res.After)
	}

	// The minimized trace must itself fail the predicate when replayed.
	min := res.Trace.Deliveries()
	runWith := func(seq []graph.EdgeID) bool {
		rr, rerr := sim.Run(g, newProto(), sim.Options{Scheduler: NewLenientReplayer(seq), Seed: tr.Seed})
		return pred(rr, rerr)
	}
	if !runWith(min) {
		t.Fatal("minimized trace does not fail the predicate")
	}

	// 1-minimality: removing any single delivery makes the predicate pass.
	for i := range min {
		cand := make([]graph.EdgeID, 0, len(min)-1)
		cand = append(cand, min[:i]...)
		cand = append(cand, min[i+1:]...)
		if runWith(cand) {
			t.Fatalf("not 1-minimal: removing delivery %d (edge %d) still fails", i, min[i])
		}
	}

	// Determinism: shrinking again yields the identical witness.
	res2, err := Shrink(g, newProto, tr, pred)
	if err != nil {
		t.Fatal(err)
	}
	min2 := res2.Trace.Deliveries()
	if len(min2) != len(min) {
		t.Fatalf("non-deterministic shrink: %d vs %d deliveries", len(min), len(min2))
	}
	for i := range min {
		if min[i] != min2[i] {
			t.Fatalf("non-deterministic shrink at delivery %d: edge %d vs %d", i, min[i], min2[i])
		}
	}
}

// farthestVertex returns a vertex at maximal BFS depth from the root, the
// most shrink-resistant target.
func farthestVertex(g *graph.G) graph.VertexID {
	depth := make([]int, g.NumVertices())
	for v := range depth {
		depth[v] = -1
	}
	depth[g.Root()] = 0
	queue := []graph.VertexID{g.Root()}
	far := g.Root()
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for j := 0; j < g.OutDegree(v); j++ {
			w := g.OutEdge(v, j).To
			if depth[w] == -1 {
				depth[w] = depth[v] + 1
				if depth[w] > depth[far] {
					far = w
				}
				queue = append(queue, w)
			}
		}
	}
	return far
}

// TestShrinkRejectsPassingTrace: shrinking a trace whose run does not fail
// the predicate is an explicit error, not an empty result.
func TestShrinkRejectsPassingTrace(t *testing.T) {
	g := graph.Ring(5)
	newProto := func() protocol.Protocol { return core.NewGeneralBroadcast([]byte("m")) }
	tr, _ := record(t, g, newProto(), "fifo", 1)
	_, err := Shrink(g, newProto, tr, func(r *sim.Result, err error) bool { return false })
	if err == nil {
		t.Fatal("shrink of a passing trace did not error")
	}
}

// TestShrinkQuiescencePredicate shrinks a real schedule-independent
// predicate — the run going quiescent on a graph with a dead-end cycle — to
// a handful of deliveries.
func TestShrinkQuiescencePredicate(t *testing.T) {
	b := graph.NewBuilder(0)
	s := b.AddVertex()
	a := b.AddVertex()
	x := b.AddVertex()
	y := b.AddVertex()
	tt := b.AddVertex()
	b.AddEdge(s, a)
	b.AddEdge(a, x).AddEdge(a, tt)
	b.AddEdge(x, y)
	b.AddEdge(y, x)
	b.SetRoot(s).SetTerminal(tt).SetName("dead-end")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	newProto := func() protocol.Protocol { return core.NewGeneralBroadcast([]byte("m")) }
	tr, r := record(t, g, newProto(), "random", 9)
	if r.Verdict != sim.Quiescent {
		t.Fatalf("verdict %s, want quiescent", r.Verdict)
	}
	res, err := Shrink(g, newProto, tr, func(r *sim.Result, err error) bool {
		return err == nil && r.Verdict == sim.Quiescent
	})
	if err != nil {
		t.Fatal(err)
	}
	// Quiescence holds even for the empty schedule's prefix... no: an empty
	// delivery schedule quiesces trivially, so the minimum is zero
	// deliveries — the shrinker must find exactly that.
	if res.After != 0 {
		t.Fatalf("quiescence witness should shrink to 0 deliveries, got %d", res.After)
	}
}
