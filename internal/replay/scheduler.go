package replay

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sim"
)

// Replayer is a sim.Scheduler that re-executes a recorded delivery schedule
// verbatim: Pop returns the recorded edges in order, so a replayed run is
// byte-identical to the recording (same sends, same deliveries, same steps).
//
// Two modes exist:
//
//   - strict (the default for full recordings): the next scheduled edge must
//     be deliverable exactly when its turn comes, and the run must consume
//     the whole schedule. Any mismatch records a divergence error — the run
//     stops cleanly and Err reports what went wrong, loudly naming the
//     position. A strict divergence means graph, protocol or engine changed
//     behavior since the trace was recorded.
//   - lenient (Trace.Truncated, used by the shrinker): scheduled entries
//     that are not currently deliverable are skipped, and the run simply
//     ends when the schedule is exhausted, leaving undelivered messages in
//     flight. This is what makes a delivery subsequence a runnable
//     hypothesis during delta debugging.
//
// The scheduler contract's Len is interpreted as "can the replay deliver
// another scheduled event": the engine only ever compares it with zero.
type Replayer struct {
	script  []graph.EdgeID
	lenient bool

	cursor  int
	pending []bool
	npend   int
	err     error
}

var _ sim.Scheduler = (*Replayer)(nil)

// NewReplayer returns a Replayer for the trace's delivery schedule, lenient
// exactly when the trace is marked Truncated.
func NewReplayer(tr *Trace) *Replayer {
	return &Replayer{script: tr.Deliveries(), lenient: tr.Truncated}
}

// NewLenientReplayer returns a lenient Replayer over a bare delivery
// sequence; the shrinker uses it to test candidate subsequences.
func NewLenientReplayer(deliveries []graph.EdgeID) *Replayer {
	return &Replayer{script: deliveries, lenient: true}
}

// Name implements sim.Scheduler.
func (r *Replayer) Name() string { return "replay" }

// Err returns the divergence recorded during the run, if any. Check it after
// every strict replay.
func (r *Replayer) Err() error { return r.err }

// Remaining returns the number of scheduled deliveries not yet executed.
func (r *Replayer) Remaining() int { return len(r.script) - r.cursor }

// Reset implements sim.Scheduler.
func (r *Replayer) Reset(ctx sim.SchedContext) {
	nE := ctx.Graph.NumEdges()
	if cap(r.pending) < nE {
		r.pending = make([]bool, nE)
	} else {
		r.pending = r.pending[:nE]
		for e := range r.pending {
			r.pending[e] = false
		}
	}
	r.npend = 0
	r.cursor = 0
	r.err = nil
}

// Push implements sim.Scheduler.
func (r *Replayer) Push(pe sim.PendingEdge) {
	r.pending[pe.Edge] = true
	r.npend++
}

// Len implements sim.Scheduler. It returns a positive count exactly when the
// next scheduled delivery can execute, advancing past skippable entries in
// lenient mode and recording a divergence in strict mode.
func (r *Replayer) Len() int {
	if r.err != nil {
		return 0
	}
	for r.cursor < len(r.script) {
		e := r.script[r.cursor]
		if int(e) < 0 || int(e) >= len(r.pending) {
			r.err = fmt.Errorf("replay: delivery %d references edge %d, graph has %d edges", r.cursor, e, len(r.pending))
			return 0
		}
		if r.pending[e] {
			return len(r.script) - r.cursor
		}
		if !r.lenient {
			r.err = fmt.Errorf("replay: divergence at delivery %d: edge %d has no deliverable message (%d edges pending)", r.cursor, e, r.npend)
			return 0
		}
		r.cursor++ // lenient: the prerequisite was removed, skip the entry
	}
	if !r.lenient && r.npend > 0 {
		r.err = fmt.Errorf("replay: schedule exhausted after %d deliveries with %d edges still pending", len(r.script), r.npend)
	}
	return 0
}

// Pop implements sim.Scheduler. The engine calls it only after Len() > 0, so
// the cursor is positioned on a deliverable entry.
func (r *Replayer) Pop() graph.EdgeID {
	e := r.script[r.cursor]
	r.cursor++
	r.pending[e] = false
	r.npend--
	return e
}
