package replay

import (
	"bytes"
	"testing"

	"repro/internal/bitio"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sim"
)

// FuzzDecode: the codec must never panic and never allocate unboundedly on
// hostile input; whatever it does accept must re-encode and re-decode to the
// same trace.
func FuzzDecode(f *testing.F) {
	g := graph.Ring(5)
	sched, err := sim.NewScheduler("random")
	if err != nil {
		f.Fatal(err)
	}
	rec := NewRecorder()
	if _, err := sim.Run(g, core.NewGeneralBroadcast([]byte("m")), sim.Options{
		Scheduler: sched, Seed: 7, Observer: rec,
	}); err != nil {
		f.Fatal(err)
	}
	// Seed with a real encoded trace and a few degenerate inputs.
	f.Add(Encode(rec.Trace(g, "generalcast", "random", 7)))
	f.Add(Encode(&Trace{Protocol: "p", Scheduler: "s"}))
	f.Add([]byte{})
	f.Add([]byte{0x41, 0x4E, 0x52, 0x54})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := Decode(data)
		if err != nil {
			return
		}
		re := Encode(dec)
		dec2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode of re-encode failed: %v", err)
		}
		if dec2.GraphFP != dec.GraphFP || dec2.Protocol != dec.Protocol ||
			dec2.Scheduler != dec.Scheduler || dec2.Seed != dec.Seed ||
			dec2.Truncated != dec.Truncated || len(dec2.Events) != len(dec.Events) {
			t.Fatal("re-encode round trip not stable")
		}
	})
}

// TestDecodeCorruptInputs pins the loud-error guarantee on a table of
// specifically malformed inputs: truncations at every prefix length of a
// valid trace, a flipped magic, and byte-level corruption (which may decode
// but must never panic).
func TestDecodeCorruptInputs(t *testing.T) {
	g := graph.Line(3)
	sched, err := sim.NewScheduler("fifo")
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder()
	if _, err := sim.Run(g, core.NewTreeBroadcast([]byte("m"), core.RulePow2), sim.Options{
		Scheduler: sched, Observer: rec,
	}); err != nil {
		t.Fatal(err)
	}
	valid := Encode(rec.Trace(g, "treecast/pow2", "fifo", 1))
	if _, err := Decode(valid); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	// Every strict prefix must error, never panic.
	for n := 0; n < len(valid); n++ {
		if _, err := Decode(valid[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", n)
		}
	}
	// Flip the magic.
	bad := append([]byte(nil), valid...)
	bad[0] ^= 0xFF
	if _, err := Decode(bad); err == nil {
		t.Fatal("bad magic decoded without error")
	}
	// Corrupt each byte in turn; decoding may succeed (the flip may land in
	// the payload) but must never panic.
	for i := range valid {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0x55
		_, _ = Decode(mut)
	}
}

// TestDecodeOverflowLengths pins the overflow hardening of the length
// guards: a crafted header declaring a near-2^64 graph length or event
// count must error, not wrap past the bounds check into a huge allocation
// or a panic.
func TestDecodeOverflowLengths(t *testing.T) {
	header := func() *bitio.Writer {
		var w bitio.Writer
		w.WriteBits(traceMagic, 32)
		w.WriteGamma(FormatVersion)
		w.WriteBit(0)      // not truncated
		w.WriteBits(0, 64) // fingerprint
		w.WriteBits(0, 64) // seed
		w.WriteGamma0(1)   // protocol name length
		w.WriteBytes([]byte{'p'})
		w.WriteGamma0(1) // scheduler name length
		w.WriteBytes([]byte{'s'})
		return &w
	}

	// graphLen = 2^61: graphLen*8 would wrap to 0 and slip past a
	// multiplying guard.
	w := header()
	w.WriteGamma0(1 << 61)
	if _, err := Decode(w.Bytes()); err == nil {
		t.Fatal("2^61 graph length decoded without error")
	}

	// nEvents = 2^63: nEvents*2 would wrap to 0.
	w = header()
	w.WriteGamma0(0) // no graph text
	w.WriteGamma0(1 << 63)
	if _, err := Decode(w.Bytes()); err == nil {
		t.Fatal("2^63 event count decoded without error")
	}
}
