package replay

import (
	"reflect"
	"testing"

	"repro/internal/bitio"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/protocol"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// recordUnder is record with a fault plan armed: the run executes under the
// compiled spec and the returned trace carries it in the header.
func recordUnder(t *testing.T, g *graph.G, spec string, schedName string, seed int64) (*Trace, *sim.Result) {
	t.Helper()
	faults, plan, err := scenario.CompileSpec(spec, g)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := sim.NewScheduler(schedName)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder()
	r, err := sim.Run(g, core.NewGeneralBroadcast([]byte("m")), sim.Options{
		Scheduler: sched, Seed: seed, Faults: faults, Observer: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := rec.Trace(g, "generalcast", schedName, seed)
	tr.Faults = plan.Canonical()
	return tr, r
}

// TestCodecFaultsRoundTrip: a fault plan in the header survives
// Encode→Decode, and a fault-free trace still encodes an empty field.
func TestCodecFaultsRoundTrip(t *testing.T) {
	g := graph.Line(5)
	tr, _ := recordUnder(t, g, "crash=3:0,recover=3:2,cut=1:1,lossat=9:50,seed=4", "fifo", 7)
	dec, err := Decode(Encode(tr))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Faults != tr.Faults {
		t.Fatalf("Faults = %q after round trip, want %q", dec.Faults, tr.Faults)
	}
	if dec.Version != FormatVersion {
		t.Fatalf("Version = %d, want %d", dec.Version, FormatVersion)
	}

	tr.Faults = ""
	dec, err = Decode(Encode(tr))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Faults != "" {
		t.Fatalf("fault-free trace decoded with Faults = %q", dec.Faults)
	}
}

// TestCodecV1Compat: a hand-encoded version-1 stream (no faults field) must
// still decode, with an empty fault plan — committed v1 traces stay readable.
func TestCodecV1Compat(t *testing.T) {
	g := graph.Line(3)
	tr, _ := record(t, g, core.NewGeneralBroadcast([]byte("m")), "fifo", 11)

	// The v1 layout is the v2 layout minus the faults string: magic, version,
	// truncated bit, fingerprint, seed, protocol, scheduler, graph, events.
	var w bitio.Writer
	w.WriteBits(traceMagic, 32)
	w.WriteGamma(1)
	w.WriteBit(0)
	w.WriteBits(tr.GraphFP, 64)
	w.WriteBits(uint64(tr.Seed), 64)
	writeString(&w, tr.Protocol)
	writeString(&w, tr.Scheduler)
	w.WriteGamma0(uint64(len(tr.GraphText)))
	w.WriteBytes(tr.GraphText)
	w.WriteGamma0(uint64(len(tr.Events)))
	for _, ev := range tr.Events {
		w.WriteBit(uint(ev.Kind))
		w.WriteGamma0(uint64(ev.Edge))
	}

	dec, err := Decode(append([]byte(nil), w.Bytes()...))
	if err != nil {
		t.Fatalf("decoding v1 bytes: %v", err)
	}
	if dec.Version != 1 {
		t.Fatalf("Version = %d, want 1", dec.Version)
	}
	if dec.Faults != "" {
		t.Fatalf("v1 trace decoded with Faults = %q, want empty", dec.Faults)
	}
	if dec.GraphFP != tr.GraphFP || dec.Protocol != tr.Protocol ||
		dec.Scheduler != tr.Scheduler || dec.Seed != tr.Seed ||
		!reflect.DeepEqual(dec.Events, tr.Events) {
		t.Fatalf("v1 decode mismatch:\n got %+v\nwant %+v", dec, tr)
	}
	// Re-encoding upgrades to the current version; the upgraded bytes decode
	// to the same trace (modulo the version stamp).
	dec2, err := Decode(Encode(dec))
	if err != nil {
		t.Fatalf("decoding upgraded bytes: %v", err)
	}
	if dec2.Version != FormatVersion || dec2.Faults != "" {
		t.Fatalf("upgrade: version %d faults %q", dec2.Version, dec2.Faults)
	}
	if !reflect.DeepEqual(dec2.Events, dec.Events) {
		t.Fatal("upgrade changed the event stream")
	}
}

// TestReplayReArmsFaultPlan: replaying a trace recorded under a churn plan
// re-arms the plan — same drops, same verdict, same churn events — and a
// caller-supplied plan on top of a header plan is rejected.
func TestReplayReArmsFaultPlan(t *testing.T) {
	g := graph.Line(5)
	spec := "crash=3:0,recover=3:1"
	tr, r1 := recordUnder(t, g, spec, "fifo", 3)
	if r1.Dropped != 1 {
		t.Fatalf("reference run dropped %d, want 1", r1.Dropped)
	}

	r2, err := Run(g, core.NewGeneralBroadcast([]byte("m")), tr, sim.Options{})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if r2.Verdict != r1.Verdict || r2.Dropped != r1.Dropped {
		t.Fatalf("replay %s/%d drops, recorded %s/%d", r2.Verdict, r2.Dropped, r1.Verdict, r1.Dropped)
	}
	if !reflect.DeepEqual(r2.Churn, r1.Churn) {
		t.Fatalf("replay churn %+v, recorded %+v", r2.Churn, r1.Churn)
	}

	faults, _, err := scenario.CompileSpec("drop=0:1", g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(g, core.NewGeneralBroadcast([]byte("m")), tr, sim.Options{Faults: faults}); err == nil {
		t.Fatal("replay accepted a caller plan on top of the trace's header plan")
	}

	// A malformed header plan must fail loudly, not run fault-free.
	bad := *tr
	bad.Faults = "crash=99:0"
	if _, err := Run(g, core.NewGeneralBroadcast([]byte("m")), &bad, sim.Options{}); err == nil {
		t.Fatal("replay accepted a header plan referencing a nonexistent vertex")
	}
}

// TestShrinkHoldsFaultPlan is the auto-shrink-under-faults contract: the
// minimizer re-arms the header plan in every oracle run and carries it into
// the shrunk trace, so the witness stays a witness. The predicate here —
// "the terminal was never visited" — only holds because of the crash, so a
// fault-free oracle would reject every candidate including the full trace.
func TestShrinkHoldsFaultPlan(t *testing.T) {
	g := graph.Line(5)
	spec := "crash=3:0"
	tr, r1 := recordUnder(t, g, spec, "fifo", 5)
	if r1.Visited[graph.VertexID(g.Terminal())] {
		t.Fatal("crash plan did not cut the line; predicate would be vacuous")
	}
	pred := func(r *sim.Result, err error) bool {
		return err == nil && r != nil && !r.Visited[graph.VertexID(g.Terminal())]
	}
	res, err := Shrink(g, func() protocol.Protocol { return core.NewGeneralBroadcast([]byte("m")) }, tr, pred)
	if err != nil {
		t.Fatalf("shrink: %v", err)
	}
	if res.Trace.Faults != tr.Faults {
		t.Fatalf("shrunk trace Faults = %q, want %q", res.Trace.Faults, tr.Faults)
	}
	// The shrunk trace must itself replay to the failing outcome.
	r2, err := Run(g, core.NewGeneralBroadcast([]byte("m")), res.Trace, sim.Options{})
	if err != nil {
		t.Fatalf("replaying shrunk trace: %v", err)
	}
	if !pred(r2, nil) {
		t.Fatal("shrunk trace no longer witnesses the failure")
	}
}

// TestRecordWildUnderFaults: the wild-capture tier composes with a churn
// plan — the capture runs under the compiled spec, the canonicalizing replay
// re-arms it (verdicts must agree), and the canonical spec lands in the
// trace header.
func TestRecordWildUnderFaults(t *testing.T) {
	g := graph.Line(5)
	newProto := func() protocol.Protocol { return core.NewGeneralBroadcast([]byte("m")) }
	spec := "crash=3:0,recover=3:1"
	r, tr, err := RecordWild(sim.Concurrent(), g, newProto, sim.Options{Seed: 2}, spec)
	if err != nil {
		t.Fatalf("RecordWild: %v", err)
	}
	if r.Dropped != 1 || r.Verdict != sim.Quiescent {
		t.Fatalf("wild run %s/%d drops, want quiescent/1", r.Verdict, r.Dropped)
	}
	if tr.Faults != spec {
		t.Fatalf("trace Faults = %q, want %q", tr.Faults, spec)
	}
	r2, err := Run(g, newProto(), tr, sim.Options{})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if r2.Verdict != r.Verdict || r2.Dropped != r.Dropped {
		t.Fatalf("replay %s/%d, wild %s/%d", r2.Verdict, r2.Dropped, r.Verdict, r.Dropped)
	}
}
