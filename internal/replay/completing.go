package replay

import (
	"repro/internal/graph"
	"repro/internal/sim"
)

// CompletingReplayer is a sim.Scheduler that executes a scripted delivery
// prefix leniently and then hands control to a fallback adversary, so the
// run always reaches a real verdict instead of stranding in-flight messages
// when the script runs out.
//
// This is the execution substrate of the schedule fuzzer: a mutated
// delivery sequence is only a *hypothesis* about a nearby schedule — once
// the perturbation changes what a vertex sends, the recorded suffix may
// reference messages that no longer exist. The completing replayer skips
// unexecutable entries (counting them), and when the script is exhausted it
// seeds the fallback scheduler with the currently pending edges and lets it
// drive the run to termination or quiescence. Every run it schedules is
// therefore a valid schedule of the protocol by construction.
type CompletingReplayer struct {
	script   []graph.EdgeID
	fallback sim.Scheduler

	ctx      sim.SchedContext
	cursor   int
	pending  []bool
	headSeq  []uint64
	switched bool

	skipped   int
	completed int
}

var _ sim.Scheduler = (*CompletingReplayer)(nil)

// NewCompletingReplayer returns a CompletingReplayer over the scripted
// deliveries with the given fallback adversary (which must be fresh or
// resettable; it is Reset when the hand-over happens).
func NewCompletingReplayer(deliveries []graph.EdgeID, fallback sim.Scheduler) *CompletingReplayer {
	return &CompletingReplayer{script: deliveries, fallback: fallback}
}

// Name implements sim.Scheduler.
func (r *CompletingReplayer) Name() string { return "replay-complete" }

// Skipped returns how many scripted entries were not executable when their
// turn came (a measure of how far the mutation drifted from validity).
func (r *CompletingReplayer) Skipped() int { return r.skipped }

// Completed returns how many deliveries the fallback adversary appended
// after the script was exhausted.
func (r *CompletingReplayer) Completed() int { return r.completed }

// Reset implements sim.Scheduler.
func (r *CompletingReplayer) Reset(ctx sim.SchedContext) {
	nE := ctx.Graph.NumEdges()
	if cap(r.pending) < nE {
		r.pending = make([]bool, nE)
		r.headSeq = make([]uint64, nE)
	} else {
		r.pending = r.pending[:nE]
		r.headSeq = r.headSeq[:nE]
		for e := range r.pending {
			r.pending[e] = false
		}
	}
	r.ctx = ctx
	r.cursor = 0
	r.switched = false
	r.skipped = 0
	r.completed = 0
}

// Push implements sim.Scheduler.
func (r *CompletingReplayer) Push(pe sim.PendingEdge) {
	r.pending[pe.Edge] = true
	r.headSeq[pe.Edge] = pe.HeadSeq
	if r.switched {
		r.fallback.Push(pe)
	}
}

// Len implements sim.Scheduler. It advances the cursor past unexecutable
// script entries; when the script is exhausted it performs the one-time
// hand-over, seeding the fallback with every currently pending edge.
func (r *CompletingReplayer) Len() int {
	if !r.switched {
		for r.cursor < len(r.script) {
			e := r.script[r.cursor]
			if int(e) >= 0 && int(e) < len(r.pending) && r.pending[e] {
				return len(r.script) - r.cursor
			}
			r.cursor++
			r.skipped++
		}
		r.switched = true
		r.fallback.Reset(r.ctx)
		for e, p := range r.pending {
			if p {
				r.fallback.Push(sim.PendingEdge{Edge: graph.EdgeID(e), HeadSeq: r.headSeq[e]})
			}
		}
	}
	return r.fallback.Len()
}

// Pop implements sim.Scheduler.
func (r *CompletingReplayer) Pop() graph.EdgeID {
	var e graph.EdgeID
	if !r.switched {
		e = r.script[r.cursor]
		r.cursor++
	} else {
		e = r.fallback.Pop()
		r.completed++
	}
	r.pending[e] = false
	return e
}
