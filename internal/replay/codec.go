package replay

import (
	"errors"
	"fmt"

	"repro/internal/bitio"
	"repro/internal/graph"
)

// FormatVersion is the current trace codec version. Decoders accept exactly
// the versions they know; bumping this number is a compatibility event and
// must come with a corpus update in testdata/. Version history:
//
//	1  initial format
//	2  fault-plan spec string in the header (after scheduler); v1 traces
//	   decode with an empty plan
const FormatVersion = 2

// traceMagic opens every encoded trace ("ANRT", anonymous-network replay
// trace).
const traceMagic = 0x414E5254

// ErrBadTrace is wrapped by every Decode failure.
var ErrBadTrace = errors.New("replay: malformed trace")

// maxStringBytes bounds the header strings a decoder will allocate; real
// protocol and scheduler names are tens of bytes.
const maxStringBytes = 1 << 10

// Encode renders tr in the versioned binary format:
//
//	magic     32 bits          "ANRT"
//	version   gamma            FormatVersion
//	truncated 1 bit
//	graphFP   64 bits
//	seed      64 bits          two's complement
//	protocol  gamma0 len + bytes
//	scheduler gamma0 len + bytes
//	faults    gamma0 len + bytes (v2+; canonical fault spec, len 0 = none)
//	graph     gamma0 len + bytes (anonnet v1 text; len 0 = absent)
//	nevents   gamma0
//	events    nevents × (1-bit kind + gamma0 edge)
//
// The stream is bit-packed MSB-first and zero-padded to a byte boundary.
// Encode always writes the current FormatVersion.
func Encode(tr *Trace) []byte {
	var w bitio.Writer
	w.WriteBits(traceMagic, 32)
	w.WriteGamma(FormatVersion)
	if tr.Truncated {
		w.WriteBit(1)
	} else {
		w.WriteBit(0)
	}
	w.WriteBits(tr.GraphFP, 64)
	w.WriteBits(uint64(tr.Seed), 64)
	writeString(&w, tr.Protocol)
	writeString(&w, tr.Scheduler)
	writeString(&w, tr.Faults)
	w.WriteGamma0(uint64(len(tr.GraphText)))
	w.WriteBytes(tr.GraphText)
	w.WriteGamma0(uint64(len(tr.Events)))
	for _, ev := range tr.Events {
		w.WriteBit(uint(ev.Kind))
		w.WriteGamma0(uint64(ev.Edge))
	}
	return append([]byte(nil), w.Bytes()...)
}

func writeString(w *bitio.Writer, s string) {
	w.WriteGamma0(uint64(len(s)))
	w.WriteBytes([]byte(s))
}

// Decode parses an encoded trace. It validates the magic, version and all
// length fields against the available bits, so truncated or corrupt input
// returns an error wrapping ErrBadTrace — never a panic and never an
// unbounded allocation.
func Decode(data []byte) (*Trace, error) {
	r := bitio.NewReader(data, -1)
	magic, err := r.ReadBits(32)
	if err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadTrace, err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("%w: bad magic %08x", ErrBadTrace, magic)
	}
	version, err := r.ReadGamma()
	if err != nil {
		return nil, fmt.Errorf("%w: version: %v", ErrBadTrace, err)
	}
	if version < 1 || version > FormatVersion {
		return nil, fmt.Errorf("%w: unsupported version %d (have %d)", ErrBadTrace, version, FormatVersion)
	}
	truncBit, err := r.ReadBit()
	if err != nil {
		return nil, fmt.Errorf("%w: flags: %v", ErrBadTrace, err)
	}
	fp, err := r.ReadBits(64)
	if err != nil {
		return nil, fmt.Errorf("%w: fingerprint: %v", ErrBadTrace, err)
	}
	seed, err := r.ReadBits(64)
	if err != nil {
		return nil, fmt.Errorf("%w: seed: %v", ErrBadTrace, err)
	}
	proto, err := readString(r, "protocol")
	if err != nil {
		return nil, err
	}
	sched, err := readString(r, "scheduler")
	if err != nil {
		return nil, err
	}
	var faults string
	if version >= 2 {
		faults, err = readString(r, "faults")
		if err != nil {
			return nil, err
		}
	}
	graphLen, err := r.ReadGamma0()
	if err != nil {
		return nil, fmt.Errorf("%w: graph length: %v", ErrBadTrace, err)
	}
	// Divide rather than multiply: a crafted huge length must not overflow
	// its way past the guard and into an unbounded allocation.
	if graphLen > uint64(r.Remaining())/8 {
		return nil, fmt.Errorf("%w: graph length %d exceeds remaining input", ErrBadTrace, graphLen)
	}
	var graphText []byte
	if graphLen > 0 {
		graphText, err = r.ReadBytes(int(graphLen))
		if err != nil {
			return nil, fmt.Errorf("%w: graph text: %v", ErrBadTrace, err)
		}
	}
	nEvents, err := r.ReadGamma0()
	if err != nil {
		return nil, fmt.Errorf("%w: event count: %v", ErrBadTrace, err)
	}
	// Every event costs at least 2 bits (kind + gamma0(0)), which bounds the
	// allocation by the input size; divide so a huge count cannot overflow
	// past the guard.
	if nEvents > uint64(r.Remaining())/2 {
		return nil, fmt.Errorf("%w: event count %d exceeds remaining input", ErrBadTrace, nEvents)
	}
	events := make([]Event, 0, nEvents)
	for i := uint64(0); i < nEvents; i++ {
		kind, err := r.ReadBit()
		if err != nil {
			return nil, fmt.Errorf("%w: event %d kind: %v", ErrBadTrace, i, err)
		}
		edge, err := r.ReadGamma0()
		if err != nil {
			return nil, fmt.Errorf("%w: event %d edge: %v", ErrBadTrace, i, err)
		}
		if edge > 1<<40 {
			return nil, fmt.Errorf("%w: event %d edge id %d out of range", ErrBadTrace, i, edge)
		}
		events = append(events, Event{Kind: EventKind(kind), Edge: graph.EdgeID(edge)})
	}
	return &Trace{
		Version:   int(version),
		GraphFP:   fp,
		Protocol:  proto,
		Scheduler: sched,
		Seed:      int64(seed),
		Faults:    faults,
		Truncated: truncBit == 1,
		GraphText: graphText,
		Events:    events,
	}, nil
}

func readString(r *bitio.Reader, field string) (string, error) {
	n, err := r.ReadGamma0()
	if err != nil {
		return "", fmt.Errorf("%w: %s length: %v", ErrBadTrace, field, err)
	}
	if n > maxStringBytes {
		return "", fmt.Errorf("%w: %s length %d too large", ErrBadTrace, field, n)
	}
	if n*8 > uint64(r.Remaining()) {
		return "", fmt.Errorf("%w: %s length %d exceeds remaining input", ErrBadTrace, field, n)
	}
	b, err := r.ReadBytes(int(n))
	if err != nil {
		return "", fmt.Errorf("%w: %s: %v", ErrBadTrace, field, err)
	}
	return string(b), nil
}
