package replay

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/protocol"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// Predicate decides whether one replayed run still exhibits the failure
// being minimized (verdict divergence, label collision, topology mismatch,
// ...). It receives the run's result and error; returning true means "still
// failing, keep shrinking toward this".
type Predicate func(r *sim.Result, err error) bool

// ShrinkResult reports a minimization.
type ShrinkResult struct {
	// Trace is the minimized trace: a lenient (Truncated) re-recording of
	// the minimal failing delivery sequence, with the original header.
	Trace *Trace
	// Before and After are the delivery counts of the input and output.
	Before, After int
	// Runs is the number of oracle executions the search spent.
	Runs int
}

// Shrink minimizes tr to a 1-minimal failing delivery sequence: the
// predicate still fails on the result, and removing any single delivery
// makes it pass. The oracle re-runs the sequential engine on g with a fresh
// protocol from newProto under a lenient Replayer per candidate. A fault
// plan recorded in the trace header is held fixed: every oracle run re-arms
// it, and the minimized trace carries it unchanged — the search minimizes
// the schedule, never the plan. The search is suffix truncation (binary
// search to a failing prefix) followed by ddmin over the remaining delivery
// choices; it is deterministic, so the same input always shrinks to the
// same witness.
func Shrink(g *graph.G, newProto func() protocol.Protocol, tr *Trace, pred Predicate) (*ShrinkResult, error) {
	if err := Verify(tr, g, newProto().Name()); err != nil {
		return nil, err
	}
	var faults *sim.Faults
	if tr.Faults != "" {
		var err error
		if faults, _, err = scenario.CompileSpec(tr.Faults, g); err != nil {
			return nil, fmt.Errorf("replay: trace fault plan: %w", err)
		}
	}
	full := tr.Deliveries()
	res := &ShrinkResult{Before: len(full)}
	failing := func(seq []graph.EdgeID) bool {
		res.Runs++
		rep := NewLenientReplayer(seq)
		r, err := sim.Run(g, newProto(), sim.Options{Scheduler: rep, Seed: tr.Seed, Faults: faults})
		return pred(r, err)
	}
	if !failing(full) {
		return nil, fmt.Errorf("replay: predicate passes on the full trace; nothing to shrink")
	}
	seq := minFailingPrefix(full, failing)
	seq = ddmin(seq, failing)
	res.After = len(seq)

	// Re-record the minimal run so the output trace carries the actual
	// event stream (sends included) of its own replay.
	rec := NewRecorder()
	rep := NewLenientReplayer(seq)
	r, err := sim.Run(g, newProto(), sim.Options{Scheduler: rep, Seed: tr.Seed, Faults: faults, Observer: rec})
	if err != nil {
		return nil, fmt.Errorf("replay: re-recording minimal run: %w", err)
	}
	if !pred(r, err) {
		return nil, fmt.Errorf("replay: minimal run no longer fails the predicate (non-deterministic predicate?)")
	}
	out := rec.Trace(g, tr.Protocol, "replay-shrunk", tr.Seed)
	out.Faults = tr.Faults
	out.Truncated = true
	res.Trace = out
	return res, nil
}

// minFailingPrefix binary-searches the shortest failing prefix. The
// invariant "seq[:hi] fails" is maintained throughout, so the result always
// fails even when the predicate is not monotone in the prefix length (ddmin
// afterwards guarantees 1-minimality regardless).
func minFailingPrefix(seq []graph.EdgeID, failing func([]graph.EdgeID) bool) []graph.EdgeID {
	lo, hi := 0, len(seq)
	for lo < hi {
		mid := (lo + hi) / 2
		if failing(seq[:mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return seq[:hi:hi]
}

// ddmin is Zeller's delta-debugging minimization over the delivery sequence:
// repeatedly try chunks and chunk complements at increasing granularity. On
// return the sequence is 1-minimal — the final granularity has one element
// per chunk, so every single-element removal was tried and passed.
func ddmin(seq []graph.EdgeID, failing func([]graph.EdgeID) bool) []graph.EdgeID {
	n := 2
	for len(seq) >= 2 {
		chunkSize := (len(seq) + n - 1) / n
		reduced := false

		// Try each chunk alone (reduce to subset).
		for lo := 0; lo < len(seq); lo += chunkSize {
			hi := min(lo+chunkSize, len(seq))
			if failing(seq[lo:hi]) {
				seq = append([]graph.EdgeID(nil), seq[lo:hi]...)
				n = 2
				reduced = true
				break
			}
		}
		if reduced {
			continue
		}

		// Try each complement (reduce by removing one chunk). At n == 2 the
		// complements are the chunks themselves, already tried.
		if n > 2 {
			for lo := 0; lo < len(seq); lo += chunkSize {
				hi := min(lo+chunkSize, len(seq))
				comp := make([]graph.EdgeID, 0, len(seq)-(hi-lo))
				comp = append(comp, seq[:lo]...)
				comp = append(comp, seq[hi:]...)
				if failing(comp) {
					seq = comp
					n = max(n-1, 2)
					reduced = true
					break
				}
			}
		}
		if reduced {
			continue
		}

		if n < len(seq) {
			n = min(2*n, len(seq))
			continue
		}
		break
	}
	return seq
}
