package replay

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/netrun"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/sim/shard"
)

// requireStrictByteIdentical replays tr strictly on the sequential engine
// twice, re-recording each time, and demands both re-recordings be
// byte-identical to tr's encoding — the acceptance property for wild
// captures.
func requireStrictByteIdentical(t *testing.T, g *graph.G, newProto func() protocol.Protocol, tr *Trace) *sim.Result {
	t.Helper()
	if tr.Truncated {
		t.Fatalf("canonical trace is marked truncated; strict mode impossible")
	}
	enc := Encode(tr)
	var last *sim.Result
	for i := 0; i < 2; i++ {
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		rec := NewRecorder()
		r, err := Run(g, newProto(), dec, sim.Options{Observer: rec})
		if err != nil {
			t.Fatalf("strict replay %d: %v", i, err)
		}
		re := Encode(rec.Trace(g, tr.Protocol, tr.Scheduler, tr.Seed))
		if !bytes.Equal(enc, re) {
			t.Fatalf("strict replay %d is not byte-identical (%d vs %d bytes)", i, len(enc), len(re))
		}
		last = r
	}
	return last
}

// wildCases spans protocol classes, verdicts (terminating and quiescent),
// and graph shapes for the wild-capture tests.
func wildCases() []struct {
	name     string
	graph    *graph.G
	newProto func() protocol.Protocol
} {
	deadEnd := func() *graph.G {
		b := graph.NewBuilder(0)
		s := b.AddVertex()
		a := b.AddVertex()
		x := b.AddVertex()
		y := b.AddVertex()
		tt := b.AddVertex()
		b.AddEdge(s, a)
		b.AddEdge(a, x).AddEdge(a, tt)
		b.AddEdge(x, y)
		b.AddEdge(y, x)
		b.SetRoot(s).SetTerminal(tt).SetName("dead-end")
		return b.MustBuild()
	}
	return []struct {
		name     string
		graph    *graph.G
		newProto func() protocol.Protocol
	}{
		{"generalcast-ring", graph.Ring(5), func() protocol.Protocol { return core.NewGeneralBroadcast([]byte("m")) }},
		{"labelcast-randnet", graph.RandomDigraph(8, 11, graph.RandomDigraphOpts{ExtraEdges: 8, TerminalFrac: 0.3}),
			func() protocol.Protocol { return core.NewLabelAssign(nil) }},
		{"mapcast-ring", graph.Ring(4), func() protocol.Protocol { return core.NewMapExtract(nil) }},
		{"treecast-karytree", graph.KaryGroundedTree(2, 2),
			func() protocol.Protocol { return core.NewTreeBroadcast([]byte("m"), core.RulePow2) }},
		{"generalcast-deadend-quiescent", deadEnd(), func() protocol.Protocol { return core.NewGeneralBroadcast([]byte("m")) }},
	}
}

// TestRecordWildConcurrent is the concurrent half of the acceptance
// criterion: a schedule captured from the goroutine-per-vertex engine
// canonicalizes into a trace that replays byte-identically on the
// sequential engine in strict mode, with the wild run's verdict.
func TestRecordWildConcurrent(t *testing.T) {
	for _, c := range wildCases() {
		// The Go scheduler genuinely varies between runs; a few repetitions
		// capture different wild schedules through the same pipeline.
		for rep := 0; rep < 3; rep++ {
			t.Run(fmt.Sprintf("%s/%d", c.name, rep), func(t *testing.T) {
				r, tr, err := RecordWild(sim.Concurrent(), c.graph, c.newProto, sim.Options{Seed: int64(rep)}, "")
				if err != nil {
					t.Fatalf("RecordWild: %v", err)
				}
				if tr.Scheduler != "wild-concurrent" {
					t.Fatalf("scheduler header %q, want wild-concurrent", tr.Scheduler)
				}
				r2 := requireStrictByteIdentical(t, c.graph, c.newProto, tr)
				if r2.Verdict != r.Verdict {
					t.Fatalf("replay verdict %s, wild run %s", r2.Verdict, r.Verdict)
				}
			})
		}
	}
}

// TestRecordWildShard: the sharded engine's schedule — per-shard sequential
// loops stitched by the deterministic merge — is captured through the same
// serialized-observer pipeline as the other wild engines and canonicalizes
// into a trace that replays byte-identically on the sequential engine, with
// the shard run's verdict. (The *linearization* of the shard schedule varies
// with thread timing even though the run's outcome does not, which is
// exactly the case wild capture exists for.)
func TestRecordWildShard(t *testing.T) {
	for _, c := range wildCases() {
		for _, shards := range []int{2, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", c.name, shards), func(t *testing.T) {
				r, tr, err := RecordWild(shard.Engine(shards), c.graph, c.newProto, sim.Options{Seed: 9}, "")
				if err != nil {
					t.Fatalf("RecordWild: %v", err)
				}
				if tr.Scheduler != "wild-shard" {
					t.Fatalf("scheduler header %q, want wild-shard", tr.Scheduler)
				}
				r2 := requireStrictByteIdentical(t, c.graph, c.newProto, tr)
				if r2.Verdict != r.Verdict {
					t.Fatalf("replay verdict %s, shard run %s", r2.Verdict, r.Verdict)
				}
			})
		}
	}
}

// TestRecordWildTCP is the TCP half of the acceptance criterion: a schedule
// born in the kernel's loopback stack replays byte-identically on the
// sequential engine in strict mode.
func TestRecordWildTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping socket tier")
	}
	eng := netrun.Engine(core.Codec{}, netrun.Options{})
	for _, c := range wildCases() {
		t.Run(c.name, func(t *testing.T) {
			r, tr, err := RecordWild(eng, c.graph, c.newProto, sim.Options{}, "")
			if err != nil {
				t.Fatalf("RecordWild: %v", err)
			}
			if tr.Scheduler != "wild-tcp" {
				t.Fatalf("scheduler header %q, want wild-tcp", tr.Scheduler)
			}
			r2 := requireStrictByteIdentical(t, c.graph, c.newProto, tr)
			if r2.Verdict != r.Verdict {
				t.Fatalf("replay verdict %s, wild run %s", r2.Verdict, r.Verdict)
			}
		})
	}
}

// TestCanonicalizeIdempotent: canonicalizing a canonical (sequentially
// recorded) trace must be the identity.
func TestCanonicalizeIdempotent(t *testing.T) {
	g := graph.Ring(5)
	newProto := func() protocol.Protocol { return core.NewGeneralBroadcast([]byte("m")) }
	tr, _ := record(t, g, newProto(), "random", 11)
	out, _, err := Canonicalize(g, newProto, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(Encode(tr), Encode(out)) {
		t.Fatal("canonicalizing a sequential recording changed it")
	}
}

// TestVerifyMismatchError pins the typed mismatch errors: wrong graph and
// wrong protocol must both surface as *MismatchError naming the field.
func TestVerifyMismatchError(t *testing.T) {
	g := graph.Ring(5)
	tr, _ := record(t, g, core.NewGeneralBroadcast([]byte("m")), "fifo", 1)

	err := Verify(tr, graph.Ring(6), "generalcast")
	var me *MismatchError
	if !errors.As(err, &me) || me.Field != "graph fingerprint" {
		t.Fatalf("wrong-graph error = %v, want MismatchError{Field: graph fingerprint}", err)
	}
	err = Verify(tr, g, "labelcast")
	if !errors.As(err, &me) || me.Field != "protocol" {
		t.Fatalf("wrong-protocol error = %v, want MismatchError{Field: protocol}", err)
	}
	if err := Verify(tr, g, "generalcast"); err != nil {
		t.Fatalf("matching Verify errored: %v", err)
	}
}

// TestCompletingReplayerFullScript: with the full recorded script, the
// completing replayer executes it verbatim — nothing skipped, nothing
// completed, identical outcome.
func TestCompletingReplayerFullScript(t *testing.T) {
	g := graph.Ring(6)
	newProto := func() protocol.Protocol { return core.NewGeneralBroadcast([]byte("m")) }
	tr, r1 := record(t, g, newProto(), "random", 5)

	fb, err := sim.NewScheduler("fifo")
	if err != nil {
		t.Fatal(err)
	}
	comp := NewCompletingReplayer(tr.Deliveries(), fb)
	r2, err := sim.Run(g, newProto(), sim.Options{Scheduler: comp, Seed: tr.Seed})
	if err != nil {
		t.Fatal(err)
	}
	if comp.Skipped() != 0 || comp.Completed() != 0 {
		t.Fatalf("full script: skipped %d, completed %d; want 0, 0", comp.Skipped(), comp.Completed())
	}
	if r1.Verdict != r2.Verdict || r1.Steps != r2.Steps {
		t.Fatalf("outcome diverges: %s/%d vs %s/%d", r1.Verdict, r1.Steps, r2.Verdict, r2.Steps)
	}
}

// TestCompletingReplayerCompletes: a truncated script must be driven to a
// real verdict by the fallback, never stranded mid-run.
func TestCompletingReplayerCompletes(t *testing.T) {
	g := graph.Ring(6)
	newProto := func() protocol.Protocol { return core.NewGeneralBroadcast([]byte("m")) }
	tr, r1 := record(t, g, newProto(), "random", 5)
	full := tr.Deliveries()

	for _, cut := range []int{0, 1, len(full) / 2, len(full) - 1} {
		fb, err := sim.NewScheduler("fifo")
		if err != nil {
			t.Fatal(err)
		}
		comp := NewCompletingReplayer(full[:cut], fb)
		r2, err := sim.Run(g, newProto(), sim.Options{Scheduler: comp, Seed: tr.Seed})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if r2.Verdict != r1.Verdict {
			t.Fatalf("cut %d: verdict %s, full run %s", cut, r2.Verdict, r1.Verdict)
		}
		if cut < len(full) && comp.Completed() == 0 && r2.Steps <= cut {
			t.Fatalf("cut %d: fallback never ran (%d steps)", cut, r2.Steps)
		}
	}
}
