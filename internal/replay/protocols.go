package replay

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/protocol"
)

// protocolFactories maps protocol.Protocol.Name() strings, as stored in
// trace headers, back to constructors. Traces do not record the broadcast
// payload — message contents are payload-dependent but the event schedule is
// not, so replays use a canonical one-byte payload.
var protocolFactories = map[string]func() protocol.Protocol{
	"treecast/pow2":  func() protocol.Protocol { return core.NewTreeBroadcast([]byte("m"), core.RulePow2) },
	"treecast/naive": func() protocol.Protocol { return core.NewTreeBroadcast([]byte("m"), core.RuleNaive) },
	"dagcast":        func() protocol.Protocol { return core.NewDAGBroadcast([]byte("m")) },
	"generalcast":    func() protocol.Protocol { return core.NewGeneralBroadcast([]byte("m")) },
	"labelcast":      func() protocol.Protocol { return core.NewLabelAssign(nil) },
	"mapcast":        func() protocol.Protocol { return core.NewMapExtract(nil) },
}

// ProtocolFactory resolves the protocol name recorded in a trace header to a
// constructor producing fresh instances, so a self-contained trace file can
// be replayed without the caller knowing which protocol produced it.
func ProtocolFactory(name string) (func() protocol.Protocol, error) {
	f, ok := protocolFactories[name]
	if !ok {
		return nil, fmt.Errorf("replay: unknown protocol %q (have %v)", name, ProtocolNames())
	}
	return f, nil
}

// ProtocolNames lists the replayable protocols, sorted.
func ProtocolNames() []string {
	names := make([]string, 0, len(protocolFactories))
	for n := range protocolFactories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
