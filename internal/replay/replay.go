// Package replay pins adversarial schedules: it records the send/deliver
// event stream of a deterministic run into a compact, versioned binary trace
// (via internal/bitio), re-executes a recorded schedule exactly through a
// sim.Scheduler, and delta-debugs a failing trace down to a minimal
// adversarial prefix.
//
// The paper's guarantees are schedule-independent, so any schedule that ever
// makes an engine diverge from the sequential reference is a bug witness —
// and a recorded trace is exactly the advice string that turns that
// randomized adversarial run into a deterministic regression test. The
// workflow is:
//
//	rec := replay.NewRecorder()
//	r, _ := sim.Run(g, p, sim.Options{Scheduler: adv, Seed: s, Observer: rec})
//	tr := rec.Trace(g, p.Name(), adv.Name(), s)   // pin the schedule
//	data := replay.Encode(tr)                     // ship it / commit it
//
//	tr, _ = replay.Decode(data)
//	r2, _ := replay.Run(g, p, tr, sim.Options{})  // byte-identical re-run
//
//	min, _ := replay.Shrink(g, newP, tr, pred)    // 1-minimal failing prefix
//
// A trace is self-contained: besides the delivery schedule it embeds the
// graph (anonnet v1 text) and carries the graph's canonical fingerprint, the
// protocol name, the scheduler name and the seed, so replaying against the
// wrong graph or protocol fails loudly instead of producing garbage.
package replay

import (
	"bytes"
	"fmt"

	"repro/internal/graph"
	"repro/internal/protocol"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// EventKind distinguishes sends from deliveries.
type EventKind uint8

// Event kinds. The numeric values are part of the trace format.
const (
	// Send is a message entering an edge.
	Send EventKind = 0
	// Deliver is a message leaving an edge into its target vertex.
	Deliver EventKind = 1
)

// String returns the kind name.
func (k EventKind) String() string {
	switch k {
	case Send:
		return "send"
	case Deliver:
		return "deliver"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one recorded engine event: a message entering or leaving an edge.
// Message contents are not recorded — given the graph, the protocol and the
// delivery order, the engine reproduces them deterministically.
type Event struct {
	Kind EventKind
	Edge graph.EdgeID
}

// Trace is a recorded schedule with its provenance header.
type Trace struct {
	// Version is the codec version the trace was decoded from (or
	// FormatVersion for freshly recorded traces).
	Version int
	// GraphFP is graph.Fingerprint() of the graph the trace was recorded
	// on; Verify refuses a mismatching graph.
	GraphFP uint64
	// Protocol is the protocol.Protocol.Name() of the recorded run.
	Protocol string
	// Scheduler is the adversary that produced the schedule (a
	// sim.SchedulerNames() entry, "sync", or "replay-shrunk").
	Scheduler string
	// Seed is the scheduler seed of the recorded run.
	Seed int64
	// Faults is the fault/churn plan of the recorded run in the canonical
	// scenario spec syntax (scenario.FaultPlan.Canonical), or "" for a
	// fault-free run. Replay compiles and re-arms the plan, so a trace
	// recorded under faults reproduces the same drops, crashes, recoveries
	// and edge churn — the plan is part of the schedule. Traces decoded
	// from format version 1 carry "".
	Faults string
	// Truncated marks a shrunk or otherwise partial trace: replay stops
	// cleanly when the schedule is exhausted and skips undeliverable
	// entries instead of declaring divergence.
	Truncated bool
	// GraphText is the recorded graph in the anonnet v1 text format, so a
	// trace file is self-contained. May be empty for in-memory traces.
	GraphText []byte
	// Events is the full send/deliver stream in engine order.
	Events []Event
}

// Deliveries returns the delivery schedule: the edge of every Deliver event,
// in order. This is the part of the trace the replay scheduler enforces;
// sends are derived.
func (t *Trace) Deliveries() []graph.EdgeID {
	var ds []graph.EdgeID
	for _, ev := range t.Events {
		if ev.Kind == Deliver {
			ds = append(ds, ev.Edge)
		}
	}
	return ds
}

// Graph reconstructs the embedded graph, or errors if the trace carries none.
func (t *Trace) Graph() (*graph.G, error) {
	if len(t.GraphText) == 0 {
		return nil, fmt.Errorf("replay: trace embeds no graph")
	}
	g, err := graph.ParseText(bytes.NewReader(t.GraphText))
	if err != nil {
		return nil, fmt.Errorf("replay: embedded graph: %w", err)
	}
	if fp := g.Fingerprint(); fp != t.GraphFP {
		return nil, fmt.Errorf("replay: embedded graph fingerprint %016x does not match header %016x", fp, t.GraphFP)
	}
	return g, nil
}

// MismatchError reports which trace header field disagrees with the network
// or protocol a replay was asked to run against, with both values spelled
// out. Callers that want to react per field (a CLI suggesting the right
// protocol, a test asserting the failure mode) can errors.As for it instead
// of string-matching.
type MismatchError struct {
	// Field names the offending header field: "graph fingerprint",
	// "protocol", or "event edge".
	Field string
	// TraceValue is the value recorded in the trace header.
	TraceValue string
	// HaveValue is the conflicting value supplied by the caller.
	HaveValue string
}

// Error implements error.
func (e *MismatchError) Error() string {
	return fmt.Sprintf("replay: %s mismatch: trace has %s, supplied network/protocol has %s",
		e.Field, e.TraceValue, e.HaveValue)
}

// Verify checks that tr was recorded on (an isomorphic copy of) g running
// the named protocol, without running anything. Failures are *MismatchError
// values naming the offending field.
func Verify(tr *Trace, g *graph.G, protoName string) error {
	if fp := g.Fingerprint(); fp != tr.GraphFP {
		return &MismatchError{
			Field:      "graph fingerprint",
			TraceValue: fmt.Sprintf("%016x", tr.GraphFP),
			HaveValue:  fmt.Sprintf("%016x (graph %s)", fp, g),
		}
	}
	if protoName != tr.Protocol {
		return &MismatchError{
			Field:      "protocol",
			TraceValue: fmt.Sprintf("%q", tr.Protocol),
			HaveValue:  fmt.Sprintf("%q", protoName),
		}
	}
	nE := graph.EdgeID(g.NumEdges())
	for i, ev := range tr.Events {
		if ev.Edge < 0 || ev.Edge >= nE {
			return &MismatchError{
				Field:      "event edge",
				TraceValue: fmt.Sprintf("event %d references edge %d", i, ev.Edge),
				HaveValue:  fmt.Sprintf("graph with %d edges", nE),
			}
		}
	}
	return nil
}

// Recorder implements sim.Observer and accumulates the event stream in the
// trace's compact form. Attach it via sim.Options.Observer (the deterministic
// engines honor it); combine with other observers via sim.TeeObserver.
type Recorder struct {
	events []Event
}

var _ sim.Observer = (*Recorder)(nil)

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// OnSend implements sim.Observer.
func (r *Recorder) OnSend(e graph.EdgeID, msg protocol.Message) {
	r.events = append(r.events, Event{Kind: Send, Edge: e})
}

// OnDeliver implements sim.Observer.
func (r *Recorder) OnDeliver(step int, e graph.EdgeID, msg protocol.Message) {
	r.events = append(r.events, Event{Kind: Deliver, Edge: e})
}

// Events returns the recorded events in order.
func (r *Recorder) Events() []Event { return r.events }

// Reset discards all recorded events so the Recorder can observe a new run.
func (r *Recorder) Reset() { r.events = r.events[:0] }

// Trace packages the recorded events with a provenance header for the run
// they came from: the graph (fingerprint + embedded text), protocol name,
// scheduler name and seed.
func (r *Recorder) Trace(g *graph.G, protoName, schedName string, seed int64) *Trace {
	return &Trace{
		Version:   FormatVersion,
		GraphFP:   g.Fingerprint(),
		Protocol:  protoName,
		Scheduler: schedName,
		Seed:      seed,
		GraphText: g.MarshalText(),
		Events:    append([]Event(nil), r.events...),
	}
}

// Run re-executes tr on g with protocol p under the sequential engine. The
// trace must match g and p (Verify); the schedule is enforced exactly, and —
// unless the trace is marked Truncated — any divergence between the recorded
// schedule and what the run actually makes deliverable is an error. Any
// Scheduler already in opts is replaced, and a fault plan recorded in the
// trace header is compiled and re-armed (a caller-supplied plan conflicts);
// opts.Observer is honored, so a caller can re-record the replayed run and
// assert byte identity.
func Run(g *graph.G, p protocol.Protocol, tr *Trace, opts sim.Options) (*sim.Result, error) {
	if err := Verify(tr, g, p.Name()); err != nil {
		return nil, err
	}
	if tr.Faults != "" {
		if opts.Faults != nil {
			return nil, fmt.Errorf("replay: trace records fault plan %q but options already carry one", tr.Faults)
		}
		faults, _, err := scenario.CompileSpec(tr.Faults, g)
		if err != nil {
			return nil, fmt.Errorf("replay: trace fault plan: %w", err)
		}
		opts.Faults = faults
	}
	rep := NewReplayer(tr)
	opts.Scheduler = rep
	opts.Seed = tr.Seed
	r, err := sim.Run(g, p, opts)
	if err != nil {
		return r, err
	}
	if rerr := rep.Err(); rerr != nil {
		return r, rerr
	}
	if !tr.Truncated && rep.Remaining() > 0 {
		return r, fmt.Errorf("replay: run ended with %d scheduled deliveries left (protocol terminated earlier than the recording)", rep.Remaining())
	}
	return r, nil
}
