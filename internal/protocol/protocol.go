// Package protocol defines the anonymous-protocol abstraction of Section 2
// of the paper: a protocol is a tuple (Pi, Sigma, pi0, sigma0, f, g, S) of
// state space, message space, initial state, initial message, state function,
// message function, and stopping predicate.
//
// In this implementation the state function f and message function g are
// fused into Node.Receive (they are always evaluated together, on the same
// inputs), and the stopping predicate S is the Done method of the terminal's
// node. A vertex's node is constructed knowing only the vertex's in-degree,
// out-degree and role — never its identity or position — which is exactly the
// information the paper grants an anonymous processor.
package protocol

import "fmt"

// Message is a symbol sigma in the message space Sigma. Implementations are
// immutable values.
type Message interface {
	// Bits returns the exact encoded length of the message in bits. All
	// communication metrics (total communication complexity, per-edge
	// bandwidth) are sums of this quantity, matching the paper's cost model.
	Bits() int
	// Key returns a canonical encoding of the message, used to measure the
	// alphabet Sigma_G actually transmitted on a given graph (the quantity
	// bounded from below in Theorem 3.2).
	Key() string
}

// Role distinguishes the three kinds of vertices of the model.
type Role int

// Vertex roles.
const (
	RoleRoot Role = iota + 1
	RoleInternal
	RoleTerminal
)

// String returns the role name.
func (r Role) String() string {
	switch r {
	case RoleRoot:
		return "root"
	case RoleInternal:
		return "internal"
	case RoleTerminal:
		return "terminal"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Node is the state pi of one vertex together with its transition behaviour.
// A Node is driven by a single goroutine at a time; it needs no internal
// locking.
type Node interface {
	// Receive processes a message arriving on in-port inPort (f), and returns
	// the messages to transmit (g): outs[j] is sent on out-port j, nil means
	// phi (no message). The returned slice must have length equal to the
	// vertex's out-degree, or be nil when nothing is sent at all.
	Receive(msg Message, inPort int) (outs []Message, err error)
}

// Terminal is the node of the terminal vertex t; its Done method is the
// stopping predicate S and Output is the protocol's output (the state pi with
// S(pi) = 1).
type Terminal interface {
	Node
	// Done reports S(pi) for the current state.
	Done() bool
	// Output returns the protocol output; meaningful once Done is true.
	Output() any
}

// Protocol is a factory for nodes plus the initial message sigma0. The same
// Protocol value may be used for many runs; NewNode must return fresh,
// independent state each call.
type Protocol interface {
	// Name identifies the protocol in reports.
	Name() string
	// InitialMessage returns sigma0, injected by the run-time on the root's
	// single out-edge.
	InitialMessage() Message
	// NewNode returns the initial state pi0 for a vertex with the given
	// degrees and role. For RoleTerminal the result must implement Terminal.
	NewNode(inDeg, outDeg int, role Role) Node
}

// MultiInitializer is implemented by protocols that support the paper's
// Section 2 extension of a root with several outgoing edges: the unit
// commodity is split across the root's out-ports before injection.
type MultiInitializer interface {
	// InitialMessages returns one message per root out-port (nil entries
	// mean no message on that port). The returned slice must have length
	// rootOutDeg.
	InitialMessages(rootOutDeg int) []Message
}

// Compile-time helper: protocols may embed NopNode for roles that never
// receive (the root never has in-edges in this model).
type NopNode struct{}

// Receive implements Node by never producing output.
func (NopNode) Receive(Message, int) ([]Message, error) { return nil, nil }

// Codec serializes messages for transports that move real bytes (the TCP
// runtime). Implementations must round-trip every message the protocol can
// emit: Decode(Encode(m)) behaves identically to m.
type Codec interface {
	// Encode returns the wire bytes and the exact number of significant
	// bits (the final byte may be padding).
	Encode(m Message) (data []byte, bits int, err error)
	// Decode parses the first bits bits of data back into a message.
	Decode(data []byte, bits int) (Message, error)
}

// StateSized is implemented by nodes that can report the size of their
// current state pi in bits. The paper's third quality measure — "the size of
// the state space is related to the amount of memory needed at each vertex"
// — is measured through it. All protocol states in this repository grow
// monotonically, so the final state is the per-run maximum.
type StateSized interface {
	// StateBits returns the encoded size of the current state in bits.
	StateBits() int
}
