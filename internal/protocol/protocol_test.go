package protocol

import "testing"

func TestRoleString(t *testing.T) {
	for r, want := range map[Role]string{
		RoleRoot:     "root",
		RoleInternal: "internal",
		RoleTerminal: "terminal",
		Role(42):     "Role(42)",
	} {
		if got := r.String(); got != want {
			t.Fatalf("Role(%d).String() = %q, want %q", int(r), got, want)
		}
	}
}

func TestNopNode(t *testing.T) {
	outs, err := NopNode{}.Receive(nil, 0)
	if err != nil || outs != nil {
		t.Fatalf("NopNode.Receive = %v, %v", outs, err)
	}
}
