package protocol

import (
	"fmt"
	"testing"
)

// keyMsg is a minimal comparable message whose Key is its value.
type keyMsg struct{ k string }

func (m keyMsg) Bits() int   { return 8 * len(m.k) }
func (m keyMsg) Key() string { return m.k }

// sliceMsg is deliberately unhashable (slice field): the interner must fall
// back to the key map instead of panicking on the value memo.
type sliceMsg struct{ b []byte }

func (m sliceMsg) Bits() int   { return 8 * len(m.b) }
func (m sliceMsg) Key() string { return string(m.b) }

func TestInternerBasics(t *testing.T) {
	in := NewInterner()
	a := in.Intern(keyMsg{"a"})
	b := in.Intern(keyMsg{"b"})
	if a == b {
		t.Fatal("distinct keys share a symbol")
	}
	if got := in.Intern(keyMsg{"a"}); got != a {
		t.Fatalf("re-interning returned %d, want %d", got, a)
	}
	if in.KeyOf(a) != "a" || in.KeyOf(b) != "b" {
		t.Fatal("KeyOf does not round-trip")
	}
	if in.Len() != 2 {
		t.Fatalf("Len = %d, want 2", in.Len())
	}
	// Symbols are dense and first-seen ordered.
	if a != 0 || b != 1 {
		t.Fatalf("symbols not dense: a=%d b=%d", a, b)
	}
}

// TestInternerUnifiesAcrossTypes pins the hash-consing contract: equal keys
// must unify to one symbol even when they arrive as different dynamic types
// (or as unhashable values the memo cannot cache).
func TestInternerUnifiesAcrossTypes(t *testing.T) {
	in := NewInterner()
	s1 := in.Intern(keyMsg{"xyz"})
	s2 := in.Intern(sliceMsg{[]byte("xyz")})
	if s1 != s2 {
		t.Fatalf("equal keys, distinct symbols: %d vs %d", s1, s2)
	}
	s3 := in.Intern(sliceMsg{[]byte("other")})
	if s3 == s1 {
		t.Fatal("distinct keys share a symbol across types")
	}
}

// TestInternerMemoCapDoesNotBreakInjectivity floods the memo far past its
// cap with distinct values of a tiny key space; the symbol space must stay
// exactly the key space.
func TestInternerMemoCapDoesNotBreakInjectivity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	in := NewInterner()
	for i := 0; i < memoCap+512; i++ {
		m := keyMsg{fmt.Sprint(i % 7)}
		s := in.Intern(m)
		if in.KeyOf(s) != m.k {
			t.Fatalf("iteration %d: symbol %d maps to %q, want %q", i, s, in.KeyOf(s), m.k)
		}
	}
	if in.Len() != 7 {
		t.Fatalf("interned %d symbols for a 7-key space", in.Len())
	}
}

// TestInternSteadyStateZeroAlloc asserts the hot-path contract the metrics
// rework relies on: re-interning an already-seen comparable message value
// performs no heap allocation at all.
func TestInternSteadyStateZeroAlloc(t *testing.T) {
	in := NewInterner()
	msgs := [4]Message{keyMsg{"a"}, keyMsg{"b"}, keyMsg{"c"}, keyMsg{"d"}}
	for _, m := range msgs {
		in.Intern(m)
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		in.Intern(msgs[i&3])
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state Intern allocates %.1f per call, want 0", allocs)
	}
}

// FuzzInternRoundTrip is the intern/lookup round-trip fuzz target: for an
// arbitrary pair of byte-string keys, interning must be injective
// (same symbol iff same key), KeyOf must invert Intern, and re-interning
// must be stable — via both the hashable fast path and the unhashable
// fallback.
func FuzzInternRoundTrip(f *testing.F) {
	f.Add("", "x")
	f.Add("a", "a")
	f.Add("2^-3", "2^-4")
	f.Add("\x00\xff", "\x00")
	f.Fuzz(func(t *testing.T, k1, k2 string) {
		in := NewInterner()
		s1 := in.Intern(keyMsg{k1})
		s2 := in.Intern(sliceMsg{[]byte(k2)})
		if (s1 == s2) != (k1 == k2) {
			t.Fatalf("injectivity broken: keys %q,%q -> symbols %d,%d", k1, k2, s1, s2)
		}
		if in.KeyOf(s1) != k1 || in.KeyOf(s2) != k2 {
			t.Fatalf("KeyOf does not invert Intern for %q,%q", k1, k2)
		}
		// Stability under re-interning, swapping the representations.
		if in.Intern(sliceMsg{[]byte(k1)}) != s1 || in.Intern(keyMsg{k2}) != s2 {
			t.Fatalf("re-interning unstable for %q,%q", k1, k2)
		}
		if k1 == k2 && in.Len() != 1 {
			t.Fatalf("equal keys produced %d symbols", in.Len())
		}
		if k1 != k2 && in.Len() != 2 {
			t.Fatalf("distinct keys produced %d symbols", in.Len())
		}
	})
}
