package protocol

import "reflect"

// Symbol is a dense interned identifier for one element of the transmitted
// alphabet Sigma_G: two messages receive the same Symbol iff their canonical
// encodings (Message.Key) are equal. Symbols are assigned 0,1,2,... in first-
// transmission order, so they index slices directly — the simulators count
// per-symbol statistics in flat arrays instead of string-keyed maps on the
// delivery hot path.
type Symbol uint32

// Interner hash-conses messages into Symbols. It is the measurement-boundary
// owner of Message.Key: the hot path asks only "which symbol is this?", and
// the string encodings are materialized once, when results are reported.
//
// Two lookup tiers keep the steady state allocation-free:
//
//   - a value memo (map[Message]Symbol) hits when the same message value is
//     transmitted again. Interface-keyed map lookups do not allocate, and
//     most protocols here re-send small comparable message values, so after
//     warm-up an Intern call costs two map probes and zero heap.
//   - the canonical key map (map[string]Symbol) is consulted on a memo miss;
//     only a first-ever sighting of a key allocates (the key string itself).
//
// Correctness never depends on the memo: distinct message values with equal
// keys unify through the key map, so Key -> Symbol stays injective (the
// property test in internal/core asserts this across every protocol).
//
// An Interner is not safe for concurrent use; engines whose events originate
// on many goroutines already serialize metering (see chansim's metricsMu).
type Interner struct {
	byKey map[string]Symbol
	keys  []string
	memo  map[Message]Symbol
	// hashable caches, per dynamic message type, whether values of that type
	// may be used as map keys at all (a slice-carrying message would panic).
	hashable map[reflect.Type]bool
}

// memoCap bounds the value memo. Protocols that allocate a fresh pointer per
// message (e.g. big.Rat-backed symbols) would otherwise grow the memo with
// every transmission even though the key space is small; past the cap the
// memo keeps serving hits but stops admitting new values, degrading to the
// key-map path instead of degrading memory.
const memoCap = 1 << 16

// NewInterner returns an empty intern table.
func NewInterner() *Interner {
	return &Interner{
		byKey:    make(map[string]Symbol),
		memo:     make(map[Message]Symbol),
		hashable: make(map[reflect.Type]bool),
	}
}

// Intern returns the Symbol of m's canonical key, assigning the next dense
// Symbol on first sight. The fast path (value already memoized) performs no
// allocation and never calls m.Key.
func (in *Interner) Intern(m Message) Symbol {
	hashable, known := in.hashable[reflect.TypeOf(m)]
	if !known {
		hashable = reflect.TypeOf(m).Comparable()
		in.hashable[reflect.TypeOf(m)] = hashable
	}
	if hashable {
		if s, ok := in.memo[m]; ok {
			return s
		}
	}
	k := m.Key()
	s, ok := in.byKey[k]
	if !ok {
		s = Symbol(len(in.keys))
		in.keys = append(in.keys, k)
		in.byKey[k] = s
	}
	if hashable && len(in.memo) < memoCap {
		in.memo[m] = s
	}
	return s
}

// KeyOf returns the canonical key interned as s. It panics on a Symbol this
// table never issued, exactly like an out-of-range slice index.
func (in *Interner) KeyOf(s Symbol) string { return in.keys[s] }

// Len returns the number of distinct symbols interned so far — |Sigma_G| of
// the traffic seen by this table.
func (in *Interner) Len() int { return len(in.keys) }
