// Package anonnet is a library for distributed broadcasting, unique label
// assignment, and topology mapping in directed anonymous networks, after
// Langberg, Schwartz & Bruck, "Distributed Broadcasting and Mapping
// Protocols in Directed Anonymous Networks" (PODC 2007).
//
// A directed anonymous network is a directed graph — not necessarily
// strongly connected — whose processors have no identifiers, no knowledge of
// the topology (not even |V|), and can only tell their incident edges apart
// by local port number. Two distinguished vertices exist: a root s with a
// single out-edge, where computation is initiated, and a terminal t with no
// out-edges, where results and termination are observed.
//
// The library provides:
//
//   - Broadcast: deliver a message m from s to every vertex, terminating at
//     t exactly when everyone has received it — with protocol selection by
//     graph class (grounded tree / DAG / general);
//   - AssignLabels: give every internal vertex a unique label (a
//     sub-interval of [0,1)) with no pre-existing identities anywhere;
//   - ExtractTopology: reconstruct the entire network — every vertex and
//     every port-numbered edge — at the terminal.
//
// # Engines and scheduling adversaries
//
// Every run selects an execution engine (WithEngine); the sequential engine
// additionally selects an adversarial scheduler (WithScheduler) that decides
// which in-flight message is delivered next. The paper's guarantees are
// schedule-independent, so verdicts, label uniqueness, and extracted
// topologies must agree across this whole matrix — the cross-engine
// conformance suite asserts exactly that. (docs/ARCHITECTURE.md carries the
// full engine × scheduler × recordability matrix and a decision table.)
//
//	engine       schedule source              scheduler support
//	------       ---------------              -----------------
//	seq          pluggable adversary          every adversary below
//	                                          (seeded, deterministic)
//	concurrent   Go runtime interleaving      n/a (nondeterministic)
//	sync         global rounds (Section 2)    n/a (one fixed schedule)
//	tcp          kernel loopback sockets      n/a (real transport)
//	shard        partitioned seq loops +      every adversary below,
//	             deterministic merge          one instance per shard
//	             (multi-core, WithShards)     (seeded, deterministic)
//
// The sequential adversaries, selectable by name through WithScheduler and
// the -sched CLI flags (this table is drift-guarded against
// sim.SchedulerNames by a test):
//
//	fifo            deliver in global send order (default)
//	lifo            drain the most recently activated edge first
//	random          uniformly random pending edge, seeded
//	rr-vertex       round-robin over destination vertices (fair)
//	latency         per-edge latency classes drawn from the seed
//	latency-pareto  heavy-tailed per-edge Pareto delays, seeded
//	starve-oldest   always deliver the newest message, starving the oldest
//	greedy          maximize in-flight messages (worst-case adversary)
//
// # Trace record, replay, shrink, and schedule fuzzing
//
// Any run — on any engine — can pin its schedule to a self-contained binary
// trace via WithRecordTrace. The deterministic single-threaded engines
// record their event stream directly; the wild-capture engines (concurrent,
// TCP, shard) capture their schedule through a serializing observer and
// canonicalize it with one sequential replay, so even a one-off Go-runtime
// or kernel-socket schedule becomes reproducible. WithReplayTrace re-executes
// a recorded schedule byte-identically on the sequential engine, erroring
// loudly on a graph, protocol, or behavior mismatch. The trace embeds the
// network, so TraceData.Network rebuilds it from the file alone; the
// complete binary format specification is docs/TRACE_FORMAT.md.
//
// WithScheduleFuzz goes one step further: it mutates the recorded schedule
// into nearby valid schedules and re-runs each one, demanding the paper's
// schedule-independent outcome stays invariant — any violation is
// delta-debugged to a 1-minimal repro trace (see internal/replay/fuzz).
// cmd/anonshrink exposes the same machinery on the command line (record /
// replay / shrink / fuzz), and the conformance suite auto-shrinks and saves
// a repro trace whenever a matrix cell diverges (see internal/replay).
package anonnet

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/graph"
)

// VertexID identifies a vertex of a Network to the caller (the protocols
// themselves never see identities).
type VertexID = graph.VertexID

// Class describes which protocol family a network admits.
type Class int

// Network classes, in increasing generality.
const (
	// ClassGroundedTree: every vertex has in-degree 1 except the root (0)
	// and the terminal (any). Admits the cheapest broadcast.
	ClassGroundedTree Class = iota + 1
	// ClassDAG: acyclic. Admits the scalar-commodity broadcast.
	ClassDAG
	// ClassGeneral: arbitrary, possibly cyclic.
	ClassGeneral
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassGroundedTree:
		return "grounded-tree"
	case ClassDAG:
		return "dag"
	case ClassGeneral:
		return "general"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Network is an immutable directed anonymous network.
type Network struct {
	g *graph.G
}

func wrap(g *graph.G) *Network { return &Network{g: g} }

// NumVertices returns |V|.
func (n *Network) NumVertices() int { return n.g.NumVertices() }

// NumEdges returns |E|.
func (n *Network) NumEdges() int { return n.g.NumEdges() }

// Root returns the root vertex s.
func (n *Network) Root() VertexID { return n.g.Root() }

// Terminal returns the terminal vertex t.
func (n *Network) Terminal() VertexID { return n.g.Terminal() }

// MaxOutDegree returns d_out.
func (n *Network) MaxOutDegree() int { return n.g.MaxOutDegree() }

// Class returns the most specific class of the network.
func (n *Network) Class() Class { return Class(n.g.Classify()) }

// AllConnectedToTerminal reports whether every vertex can reach t — the
// exact condition under which the protocols terminate.
func (n *Network) AllConnectedToTerminal() bool { return n.g.AllConnectedToTerminal() }

// WriteDOT writes the network in Graphviz DOT format. vertexLabel may be nil
// or return extra per-vertex annotation.
func (n *Network) WriteDOT(w io.Writer, vertexLabel func(VertexID) string) error {
	return n.g.WriteDOT(w, vertexLabel)
}

// String summarizes the network.
func (n *Network) String() string { return n.g.String() }

// graphHandle gives the rest of the module access to the underlying graph.
func (n *Network) graphHandle() *graph.G { return n.g }

// Builder assembles a custom Network.
type Builder struct {
	b *graph.Builder
}

// NewBuilder returns a Builder for a network with nVertices vertices,
// numbered 0..nVertices-1.
func NewBuilder(nVertices int) *Builder {
	return &Builder{b: graph.NewBuilder(nVertices)}
}

// AddVertex appends a fresh vertex and returns its ID.
func (b *Builder) AddVertex() VertexID { return b.b.AddVertex() }

// AddEdge adds a directed edge u -> v; ports are assigned in insertion
// order. Parallel edges are allowed.
func (b *Builder) AddEdge(u, v VertexID) *Builder { b.b.AddEdge(u, v); return b }

// SetRoot designates the root s (no in-edges, exactly one out-edge).
func (b *Builder) SetRoot(v VertexID) *Builder { b.b.SetRoot(v); return b }

// SetTerminal designates the terminal t (no out-edges).
func (b *Builder) SetTerminal(v VertexID) *Builder { b.b.SetTerminal(v); return b }

// SetName attaches a human-readable name used in reports.
func (b *Builder) SetName(name string) *Builder { b.b.SetName(name); return b }

// AllowWideRoot permits a root with more than one outgoing edge (the paper's
// Section 2 extension); the unit commodity is split across the root's ports.
func (b *Builder) AllowWideRoot() *Builder { b.b.AllowWideRoot(); return b }

// Build validates the model constraints and returns the network.
func (b *Builder) Build() (*Network, error) {
	g, err := b.b.Build()
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

// ErrNotTerminated is returned when a protocol run ends quiescent: some
// vertex cannot reach the terminal, so by design the protocol must not (and
// did not) declare termination.
var ErrNotTerminated = errors.New("anonnet: protocol did not terminate (some vertex cannot reach the terminal)")

// --- standard topology generators ------------------------------------------

// Line returns the path s -> v_1 -> ... -> v_n -> t.
func Line(n int) *Network { return wrap(graph.Line(n)) }

// Chain returns the lower-bound chain G_n of the paper (Figure 5).
func Chain(n int) *Network { return wrap(graph.Chain(n)) }

// Ring returns a directed n-cycle with every cycle vertex also wired to t.
func Ring(n int) *Network { return wrap(graph.Ring(n)) }

// KaryTree returns the full d-ary grounded tree of height h with all leaves
// wired to t.
func KaryTree(h, d int) *Network { return wrap(graph.KaryGroundedTree(h, d)) }

// RandomTree returns a random grounded tree with n internal vertices.
func RandomTree(n int, seed int64) *Network { return wrap(graph.RandomGroundedTree(n, 0.2, seed)) }

// RandomDAG returns a random DAG with n internal vertices and extra
// additional forward edges.
func RandomDAG(n, extra int, seed int64) *Network { return wrap(graph.RandomDAG(n, extra, seed)) }

// RandomNetwork returns a random general (possibly cyclic) network with n
// internal vertices and extra additional edges; every vertex can reach t.
func RandomNetwork(n, extra int, seed int64) *Network {
	return wrap(graph.RandomDigraph(n, seed, graph.RandomDigraphOpts{ExtraEdges: extra, TerminalFrac: 0.15}))
}

// LayeredNetwork returns a layered cyclic network (layers x width vertices)
// with dense forward edges and one back edge per layer.
func LayeredNetwork(layers, width int, seed int64) *Network {
	return wrap(graph.LayeredDigraph(layers, width, seed))
}

// MarshalText renders the network in the library's line-oriented text
// format; ParseNetwork reads it back with identical port numbering.
func (n *Network) MarshalText() []byte { return n.g.MarshalText() }

// ParseNetwork reads a network in the text format produced by MarshalText:
//
//	anonnet v1
//	vertices 5
//	root 0
//	terminal 4
//	edge 0 1
//	...
//
// Edge order defines the port numbering the anonymous protocols observe.
func ParseNetwork(r io.Reader) (*Network, error) {
	g, err := graph.ParseText(r)
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}
