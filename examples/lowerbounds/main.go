// Lowerbounds: a tour of the paper's three adversarial constructions,
// rebuilt through the public API. Each demonstrates why the upper bounds of
// the protocols cannot be improved.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	chainDemo()
	labelDemo()
}

// chainDemo — Theorem 3.2 / Figure 5: on the chain G_n, consecutive spine
// edges are separated by out-degree-2 vertices, so any broadcasting protocol
// must put pairwise distinct symbols on them: Omega(n) alphabet, hence
// Omega(|E| log |E|) total bits. Watch the measured alphabet track n.
func chainDemo() {
	fmt.Println("=== Theorem 3.2: alphabet lower bound on the chain G_n ===")
	fmt.Println("n     |E|   alphabet   total bits")
	for _, n := range []int{4, 8, 16, 32, 64, 128} {
		net := anonnet.Chain(n)
		rep, err := anonnet.Broadcast(net, nil, anonnet.WithAlphabetTracking())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5d %-5d %-10d %d\n", n, net.NumEdges(), rep.AlphabetSize, rep.TotalBits)
	}
	fmt.Println("alphabet = n exactly; the paper proves Omega(n) is forced. Tight.")
	fmt.Println()
}

// labelDemo — Theorem 5.2 / Figure 6: build the pruned tree by hand and
// watch the deep leaf's label grow linearly in the path length although the
// graph has only h+3 vertices. The protocol cannot distinguish the pruned
// path from a full d-ary tree with d^h leaves, so it must reserve label
// space for all of them.
func labelDemo() {
	fmt.Println("=== Theorem 5.2: label length lower bound by pruning ===")
	const d = 3
	fmt.Println("h     |V|   deep-leaf label bits   bits/h")
	for _, h := range []int{2, 4, 8, 16, 32} {
		net, leaf, err := prunedTree(h, d)
		if err != nil {
			log.Fatal(err)
		}
		labels, _, err := anonnet.AssignLabels(net)
		if err != nil {
			log.Fatal(err)
		}
		lab, ok := labels[leaf]
		if !ok {
			log.Fatalf("leaf %d unlabeled", leaf)
		}
		fmt.Printf("%-5d %-5d %-22d %.1f\n", h, net.NumVertices(), lab.Bits, float64(lab.Bits)/float64(h))
	}
	fmt.Println("label bits grow ~linearly in h on an (h+3)-vertex graph: Theta(|V| log dout).")
}

// prunedTree builds Figure 6(b): a path of h vertices, each of out-degree d
// with d-1 edges rewired to t, ending in the deep leaf.
func prunedTree(h, d int) (*anonnet.Network, anonnet.VertexID, error) {
	// Vertices: s=0, path p_0..p_h = 1..h+1, t = h+2.
	b := anonnet.NewBuilder(h + 3).SetName(fmt.Sprintf("pruned(h=%d,d=%d)", h, d))
	s := anonnet.VertexID(0)
	t := anonnet.VertexID(h + 2)
	b.SetRoot(s).SetTerminal(t)
	b.AddEdge(s, 1)
	for i := 0; i < h; i++ {
		p := anonnet.VertexID(i + 1)
		for c := 0; c < d; c++ {
			if c == d/2 {
				b.AddEdge(p, anonnet.VertexID(i+2)) // continue the path
			} else {
				b.AddEdge(p, t) // pruned sibling subtree
			}
		}
	}
	leaf := anonnet.VertexID(h + 1)
	b.AddEdge(leaf, t)
	net, err := b.Build()
	return net, leaf, err
}
