// Quickstart: build a small directed anonymous network, broadcast a message
// through it, and let the terminal detect — with zero knowledge of the
// topology — the exact moment every vertex has received it.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A hand-built network:
	//
	//	s -> a -> b -> t        a, b, c are anonymous: they know only
	//	     a -> c -> t        their own port counts.
	//	     c -> a             (a cycle! the protocol still terminates)
	const (
		s, a, b, c, t = 0, 1, 2, 3, 4
	)
	b5 := anonnet.NewBuilder(5).SetName("quickstart")
	b5.SetRoot(s).SetTerminal(t)
	b5.AddEdge(s, a)
	b5.AddEdge(a, b).AddEdge(a, c)
	b5.AddEdge(b, t)
	b5.AddEdge(c, t).AddEdge(c, a)
	net, err := b5.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network %s: class=%s, every vertex reaches t: %v\n",
		net, net.Class(), net.AllConnectedToTerminal())

	// Broadcast. The protocol is selected automatically: this graph has a
	// cycle, so the interval-union protocol of Section 4 runs.
	rep, err := anonnet.Broadcast(net, []byte("firmware v2"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("protocol %s terminated: %v — all received: %v\n",
		rep.Protocol, rep.Terminated, rep.AllReceived)
	fmt.Printf("cost: %d messages, %d bits total, %d bits max on one edge\n",
		rep.Messages, rep.TotalBits, rep.BandwidthBits)

	// Now the point of the paper: if some vertex cannot reach t, the
	// terminal must never declare termination. Add a dead-end vertex.
	b6 := anonnet.NewBuilder(6).SetName("quickstart-deadend")
	b6.SetRoot(s).SetTerminal(t)
	b6.AddEdge(s, a)
	b6.AddEdge(a, b).AddEdge(a, c)
	b6.AddEdge(b, t)
	b6.AddEdge(c, t).AddEdge(c, 5) // vertex 5 has no way to t
	net2, err := b6.Build()
	if err != nil {
		log.Fatal(err)
	}
	_, err = anonnet.Broadcast(net2, []byte("firmware v2"))
	fmt.Printf("with a dead-end vertex: %v\n", err)
}
