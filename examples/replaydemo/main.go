// Replaydemo: pin an adversarial schedule and re-execute it exactly.
//
// The paper's guarantees are schedule-independent, so any interesting
// behavior found under a randomized adversary is only as valuable as your
// ability to reproduce it. This example records the delivery schedule of a
// broadcast under the heavy-tailed latency adversary, ships it through the
// binary codec (as a CI artifact or a committed regression case would be),
// reconstructs the network from the trace alone, and replays the run —
// verifying it lands on the identical outcome.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	net := anonnet.RandomNetwork(12, 16, 42)
	fmt.Printf("network:  %s\n", net)

	// Run under a seeded adversary, pinning the schedule as we go.
	var trace *anonnet.TraceData
	rep, err := anonnet.Broadcast(net, []byte("pinned!"),
		anonnet.WithScheduler("latency-pareto"),
		anonnet.WithSeed(7),
		anonnet.WithRecordTrace(&trace),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded: %s (%d delivery steps)\n", trace, rep.Steps)

	// The encoded bytes are the whole artifact: schedule, network,
	// protocol, scheduler and seed travel together.
	data := trace.Encode()
	fmt.Printf("encoded:  %d bytes\n", len(data))

	// A different process decodes the artifact and replays it — no
	// generator parameters, no scheduler configuration, just the file.
	decoded, err := anonnet.DecodeTrace(data)
	if err != nil {
		log.Fatal(err)
	}
	net2, err := decoded.Network()
	if err != nil {
		log.Fatal(err)
	}
	rep2, err := anonnet.Broadcast(net2, []byte("pinned!"),
		anonnet.WithReplayTrace(decoded),
	)
	if err != nil {
		log.Fatal(err) // any divergence from the recording errors loudly
	}
	fmt.Printf("replayed: %d delivery steps, terminated=%v\n", rep2.Steps, rep2.Terminated)

	if rep2.Steps != rep.Steps || rep2.Messages != rep.Messages {
		log.Fatalf("replay diverged: %d/%d steps, %d/%d messages",
			rep2.Steps, rep.Steps, rep2.Messages, rep.Messages)
	}
	fmt.Println("schedule replayed exactly.")
}
