// Sensorgrid: the wireless ad-hoc scenario that motivates the paper. A field
// of battery-powered sensors has strictly one-way radio links (asymmetric
// transmit power), no pre-assigned IDs, and no global topology knowledge. A
// gateway (root) pushes a configuration update downstream; a collector
// (terminal) must know when *every* sensor has it — nodes cannot acknowledge
// upstream because links are one-way.
//
// The grid is a DAG (radio reaches the next row/column only), so the
// scalar-commodity DAG broadcast of Section 3.3 runs.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	const rows, cols = 6, 6
	net, err := buildGrid(rows, cols, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensor field: %d nodes, %d one-way links, class=%s\n",
		net.NumVertices(), net.NumEdges(), net.Class())

	config := []byte(`{"sample_hz":10,"tx_dbm":-3,"sleep_ms":900}`)
	rep, err := anonnet.Broadcast(net, config)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("config pushed with %s: %d messages, %d bits total\n",
		rep.Protocol, rep.Messages, rep.TotalBits)
	fmt.Printf("collector terminated: %v — every sensor configured: %v\n",
		rep.Terminated, rep.AllReceived)
	fmt.Printf("worst link load: %d bits (radio budget per link)\n", rep.BandwidthBits)

	// A sensor whose outgoing radio died becomes a silent sink: the
	// collector must *not* report success then.
	broken, err := buildGridWithDeadRadio(rows, cols, 42)
	if err != nil {
		log.Fatal(err)
	}
	_, err = anonnet.Broadcast(broken, config)
	fmt.Printf("with one dead radio: %v\n", err)
}

// buildGrid wires sensor (r, c) to (r+1, c) and (r, c+1) — one-way links
// toward the collector corner — plus a few random diagonal shortcuts.
// The gateway feeds (0,0); the last row/column feed the collector.
func buildGrid(rows, cols int, seed int64) (*anonnet.Network, error) {
	rng := rand.New(rand.NewSource(seed))
	n := rows * cols
	b := anonnet.NewBuilder(n + 2).SetName("sensorgrid")
	gateway := anonnet.VertexID(n)
	collector := anonnet.VertexID(n + 1)
	b.SetRoot(gateway).SetTerminal(collector)
	id := func(r, c int) anonnet.VertexID { return anonnet.VertexID(r*cols + c) }
	b.AddEdge(gateway, id(0, 0))
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows && c+1 < cols && rng.Intn(4) == 0 {
				b.AddEdge(id(r, c), id(r+1, c+1)) // diagonal shortcut
			}
			if r == rows-1 && c == cols-1 {
				b.AddEdge(id(r, c), collector)
			} else if r == rows-1 || c == cols-1 {
				// Edge-of-field sensors also reach the collector.
				b.AddEdge(id(r, c), collector)
			}
		}
	}
	return b.Build()
}

// buildGridWithDeadRadio is buildGrid plus one extra sensor that can hear
// but whose transmitter is dead: it can never reach the collector.
func buildGridWithDeadRadio(rows, cols int, seed int64) (*anonnet.Network, error) {
	rng := rand.New(rand.NewSource(seed))
	n := rows * cols
	b := anonnet.NewBuilder(n + 3).SetName("sensorgrid-broken")
	gateway := anonnet.VertexID(n)
	collector := anonnet.VertexID(n + 1)
	dead := anonnet.VertexID(n + 2)
	b.SetRoot(gateway).SetTerminal(collector)
	id := func(r, c int) anonnet.VertexID { return anonnet.VertexID(r*cols + c) }
	b.AddEdge(gateway, id(0, 0))
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows && c+1 < cols && rng.Intn(4) == 0 {
				b.AddEdge(id(r, c), id(r+1, c+1))
			}
			if r == rows-1 || c == cols-1 {
				b.AddEdge(id(r, c), collector)
			}
		}
	}
	b.AddEdge(id(0, 1), dead) // the dead-radio sensor hears from a neighbour
	return b.Build()
}
