// P2pmap: the peer-to-peer scenario from the paper's introduction. An
// overlay of anonymous peers with one-way connections (NAT'd peers can dial
// out but not be dialed) needs identities and a topology map before any
// conventional routing protocol can run. This example bootstraps both from
// nothing: unique labels via the Section 5 protocol, then a full
// port-numbered map of the overlay at the observer node.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"repro"
)

func main() {
	// A random cyclic overlay: 18 peers, ~40 one-way connections.
	net := anonnet.RandomNetwork(18, 22, 7)
	fmt.Printf("overlay: %d peers, %d one-way connections, cyclic: %v\n",
		net.NumVertices(), net.NumEdges(), net.Class() == anonnet.ClassGeneral)

	// Phase 1 — identities. No peer has an ID; after the protocol each owns
	// a unique sub-interval of [0,1).
	labels, rep, err := anonnet.AssignLabels(net)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nphase 1: %d unique identities assigned (%d messages, %d bits)\n",
		len(labels), rep.Messages, rep.TotalBits)
	ids := make([]anonnet.VertexID, 0, len(labels))
	for v := range labels {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, v := range ids[:5] {
		fmt.Printf("  peer %-3d -> %s (%d bits)\n", v, labels[v], labels[v].Bits)
	}
	fmt.Printf("  ... and %d more\n", len(ids)-5)

	// Phase 2 — the map. The observer reconstructs every peer and every
	// port-numbered connection.
	topo, mrep, err := anonnet.ExtractTopology(net)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nphase 2: topology extracted at the observer: %d vertices, %d edges (%d messages)\n",
		len(topo.Vertices), len(topo.Edges), mrep.Messages)
	fmt.Printf("matches ground truth: %v\n",
		len(topo.Vertices) == net.NumVertices() && len(topo.Edges) == net.NumEdges())

	// A few recovered adjacencies, exactly as the observer sees them: by
	// label, with out-port and in-port numbers.
	fmt.Println("\nsample of the recovered map:")
	for _, e := range topo.Edges[:6] {
		fmt.Printf("  %s --port %d--> %s (in-port %d)\n", e.From, e.OutPort, e.To, e.InPort)
	}

	// Export the overlay with labels for visualization.
	f, err := os.CreateTemp("", "p2pmap-*.dot")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	err = net.WriteDOT(f, func(v anonnet.VertexID) string {
		if l, ok := labels[v]; ok {
			return l.String()
		}
		return ""
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDOT export with labels: %s\n", f.Name())
}
