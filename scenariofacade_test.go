package anonnet

import (
	"errors"
	"testing"
)

// TestWithScenarioBuildsNetwork: a scenario spec replaces the explicit
// network, across engines, and equals the network ScenarioNetwork builds.
func TestWithScenarioBuildsNetwork(t *testing.T) {
	for _, engine := range []Engine{EngineSequential, EngineSharded} {
		rep, err := Broadcast(nil, []byte("hi"),
			WithScenario("torus:w=3,h=3"), WithEngine(engine))
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if !rep.Terminated || !rep.AllReceived {
			t.Fatalf("%s: terminated=%v allReceived=%v", engine, rep.Terminated, rep.AllReceived)
		}
		if rep.Dropped != 0 {
			t.Fatalf("%s: %d messages dropped on a fault-free run", engine, rep.Dropped)
		}
	}

	n, err := ScenarioNetwork("torus:w=3,h=3")
	if err != nil {
		t.Fatal(err)
	}
	if n.NumVertices() != 3*3+2 {
		t.Fatalf("torus 3x3: %d vertices", n.NumVertices())
	}

	fams := ScenarioFamilies()
	if len(fams) < 5 {
		t.Fatalf("scenario registry lists %d families: %v", len(fams), fams)
	}
}

// TestWithScenarioConflicts: ambiguous and malformed configurations error
// instead of guessing.
func TestWithScenarioConflicts(t *testing.T) {
	n := Ring(4)
	if _, err := Broadcast(n, nil, WithScenario("torus")); err == nil {
		t.Fatal("explicit network plus WithScenario accepted")
	}
	if _, err := Broadcast(nil, nil); err == nil {
		t.Fatal("nil network without WithScenario accepted")
	}
	if _, err := Broadcast(nil, nil, WithScenario("warp:q=1")); err == nil {
		t.Fatal("unknown family accepted")
	}
	if _, err := Broadcast(nil, nil,
		WithScenario("torus@loss=10"), WithFaults("loss=20")); err == nil {
		t.Fatal("two fault plans accepted")
	}
	if _, err := Broadcast(nil, nil, WithScenario("torus"), WithFaults("warp=1")); err == nil {
		t.Fatal("malformed fault spec accepted")
	}
}

// TestWithFaultsDropsTraffic: a fault plan changes the run the way the sim
// layer promises — dropping the root's injection leaves the network
// unreached and the run unterminated, with the cost on Report.Dropped —
// and the '@' suffix of WithScenario is equivalent to WithFaults.
func TestWithFaultsDropsTraffic(t *testing.T) {
	// Edge 0 is the root's only out-edge on every generated family; dropping
	// its first message leaves the whole network unreached.
	for _, opts := range [][]Option{
		{WithScenario("torus:w=3,h=3"), WithFaults("drop=0:1")},
		{WithScenario("torus:w=3,h=3@drop=0:1")},
	} {
		rep, err := Broadcast(nil, []byte("m"), opts...)
		if !errors.Is(err, ErrNotTerminated) {
			t.Fatalf("err = %v, want ErrNotTerminated", err)
		}
		if rep.AllReceived || rep.Dropped != 1 {
			t.Fatalf("allReceived=%v dropped=%d after dropping sigma0", rep.AllReceived, rep.Dropped)
		}
	}
}

// TestScenarioLabelAssignment: the protocol stack above the scenario layer
// works end to end — labels on a generated small-world network, fault-free,
// with Dropped zero.
func TestScenarioLabelAssignment(t *testing.T) {
	labels, rep, err := AssignLabels(nil, WithScenario("smallworld:n=8,k=2,p=10"))
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) == 0 || rep.Dropped != 0 {
		t.Fatalf("labels=%d dropped=%d", len(labels), rep.Dropped)
	}
}
