package anonnet

import (
	"bufio"
	"os"
	"sort"
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestSchedulerDocMatrixInSync is the drift guard for the hand-written
// adversary table in the package documentation: the set of scheduler names
// it lists must exactly match sim.SchedulerNames(). Registering a scheduler
// without documenting it (or vice versa) fails here, not in a code review.
func TestSchedulerDocMatrixInSync(t *testing.T) {
	documented := docSchedulerTable(t)
	registered := sim.SchedulerNames()
	sort.Strings(documented)
	if strings.Join(documented, " ") != strings.Join(registered, " ") {
		t.Fatalf("anonnet package doc adversary table out of sync with the registry\n doc:      %v\n registry: %v",
			documented, registered)
	}
}

// docSchedulerTable extracts the scheduler names from the doc-comment table
// in anonnet.go: the tab-indented lines following the "-sched CLI flags"
// marker, whose first field is the scheduler name.
func docSchedulerTable(t *testing.T) []string {
	t.Helper()
	f, err := os.Open("anonnet.go")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	var names []string
	inTable := false
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "package ") {
			break
		}
		if strings.Contains(line, "-sched CLI flags") {
			inTable = true
			continue
		}
		if !inTable {
			continue
		}
		switch {
		case strings.HasPrefix(line, "//\t"):
			fields := strings.Fields(strings.TrimPrefix(line, "//\t"))
			if len(fields) > 0 {
				names = append(names, fields[0])
			}
		case line == "//" && len(names) == 0:
			// blank comment line between the marker and the table
		default:
			if len(names) > 0 {
				inTable = false
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("could not locate the adversary table in the anonnet package doc")
	}
	return names
}
