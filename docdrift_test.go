// This file is an external test package (anonnet_test, not anonnet) on
// purpose: it drift-guards documentation against internal/serve, which
// imports the facade — an internal test file could not import it without a
// cycle through the facade's own test binary.
package anonnet_test

import (
	"bufio"
	"fmt"
	"os"
	"reflect"
	"sort"
	"strings"
	"testing"

	anonnet "repro"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/sim"
)

// TestSchedulerDocMatrixInSync is the drift guard for the hand-written
// adversary table in the package documentation: the set of scheduler names
// it lists must exactly match sim.SchedulerNames(). Registering a scheduler
// without documenting it (or vice versa) fails here, not in a code review.
func TestSchedulerDocMatrixInSync(t *testing.T) {
	documented := docSchedulerTable(t)
	registered := sim.SchedulerNames()
	sort.Strings(documented)
	if strings.Join(documented, " ") != strings.Join(registered, " ") {
		t.Fatalf("anonnet package doc adversary table out of sync with the registry\n doc:      %v\n registry: %v",
			documented, registered)
	}
}

// docSchedulerTable extracts the scheduler names from the doc-comment table
// in anonnet.go: the tab-indented lines following the "-sched CLI flags"
// marker, whose first field is the scheduler name.
func docSchedulerTable(t *testing.T) []string {
	t.Helper()
	f, err := os.Open("anonnet.go")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	var names []string
	inTable := false
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "package ") {
			break
		}
		if strings.Contains(line, "-sched CLI flags") {
			inTable = true
			continue
		}
		if !inTable {
			continue
		}
		switch {
		case strings.HasPrefix(line, "//\t"):
			fields := strings.Fields(strings.TrimPrefix(line, "//\t"))
			if len(fields) > 0 {
				names = append(names, fields[0])
			}
		case line == "//" && len(names) == 0:
			// blank comment line between the marker and the table
		default:
			if len(names) > 0 {
				inTable = false
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("could not locate the adversary table in the anonnet package doc")
	}
	return names
}

// markedTableNames extracts the first backtick-quoted cell of every table
// row between the given begin/end HTML-comment markers of a markdown file.
func markedTableNames(t *testing.T, path, begin, end string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	in := false
	for _, line := range strings.Split(string(data), "\n") {
		switch {
		case strings.Contains(line, begin):
			in = true
		case strings.Contains(line, end):
			in = false
		case in && strings.HasPrefix(line, "| `"):
			rest := strings.TrimPrefix(line, "| `")
			if i := strings.IndexByte(rest, '`'); i > 0 {
				names = append(names, rest[:i])
			}
		}
	}
	if len(names) == 0 {
		t.Fatalf("no %s...%s table rows found in %s", begin, end, path)
	}
	return names
}

// TestArchitectureDocSchedulerMatrixInSync drift-guards the scheduler table
// of docs/ARCHITECTURE.md against the sim registry: every registered
// adversary must be documented there, and nothing else.
func TestArchitectureDocSchedulerMatrixInSync(t *testing.T) {
	documented := markedTableNames(t, "docs/ARCHITECTURE.md",
		"matrix:schedulers:begin", "matrix:schedulers:end")
	sort.Strings(documented)
	registered := sim.SchedulerNames()
	if strings.Join(documented, " ") != strings.Join(registered, " ") {
		t.Fatalf("docs/ARCHITECTURE.md scheduler table out of sync with the registry\n doc:      %v\n registry: %v",
			documented, registered)
	}
}

// TestArchitectureDocEngineMatrixInSync drift-guards the engine table of
// docs/ARCHITECTURE.md against the facade's engine list.
func TestArchitectureDocEngineMatrixInSync(t *testing.T) {
	documented := markedTableNames(t, "docs/ARCHITECTURE.md",
		"matrix:engines:begin", "matrix:engines:end")
	registered := append([]string(nil), anonnet.EngineNames()...)
	sort.Strings(documented)
	sort.Strings(registered)
	if strings.Join(documented, " ") != strings.Join(registered, " ") {
		t.Fatalf("docs/ARCHITECTURE.md engine table out of sync with EngineNames\n doc:      %v\n engines:  %v",
			documented, registered)
	}
}

// TestArchitectureDocFaultColumnInSync drift-guards the fault-injection
// column of the engine matrix: every engine row must state its fault
// behavior. The engine set itself is guarded above; this guards the column —
// sim.Options.Faults applies to every engine (the cross-engine conformance
// suite enforces the semantics; this enforces the documentation).
func TestArchitectureDocFaultColumnInSync(t *testing.T) {
	data, err := os.ReadFile("docs/ARCHITECTURE.md")
	if err != nil {
		t.Fatal(err)
	}
	in, col := false, -1
	rows := 0
	for _, line := range strings.Split(string(data), "\n") {
		switch {
		case strings.Contains(line, "matrix:engines:begin"):
			in = true
		case strings.Contains(line, "matrix:engines:end"):
			in = false
		case in && strings.HasPrefix(line, "| engine"):
			for i, cell := range strings.Split(line, "|") {
				if strings.Contains(cell, "fault injection") {
					col = i
				}
			}
			if col < 0 {
				t.Fatalf("engine matrix header lacks a fault-injection column: %q", line)
			}
		case in && strings.HasPrefix(line, "| `"):
			rows++
			cells := strings.Split(line, "|")
			if col < 0 || col >= len(cells) || strings.TrimSpace(cells[col]) == "" {
				t.Errorf("engine row lacks a fault-injection cell: %q", line)
			}
		}
	}
	if rows == 0 {
		t.Fatal("no engine rows found between the matrix:engines markers")
	}
}

// jsonTagsOf collects every `json` tag reachable from t, recursing through
// nested structs, slices, and arrays — the full field vocabulary a marshaled
// value can emit.
func jsonTagsOf(t reflect.Type, into map[string]bool) {
	switch t.Kind() {
	case reflect.Pointer, reflect.Slice, reflect.Array:
		jsonTagsOf(t.Elem(), into)
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			tag, _, _ := strings.Cut(f.Tag.Get("json"), ",")
			if tag == "" || tag == "-" {
				continue
			}
			into[tag] = true
			jsonTagsOf(f.Type, into)
		}
	}
}

// TestBenchJSONFieldsDocumented drift-guards the BENCH.json schema table in
// docs/BENCHMARKS.md against experiments.BenchReport: every JSON field the
// report can emit must be documented, and nothing else. Adding a benchmark
// metric without documenting it (or documenting a field that no longer
// exists) fails here, not when someone's trend tooling breaks.
func TestBenchJSONFieldsDocumented(t *testing.T) {
	documented := markedTableNames(t, "docs/BENCHMARKS.md",
		"bench:fields:begin", "bench:fields:end")
	sort.Strings(documented)

	tags := map[string]bool{}
	jsonTagsOf(reflect.TypeOf(experiments.BenchReport{}), tags)
	var want []string
	for tag := range tags {
		want = append(want, tag)
	}
	sort.Strings(want)

	if strings.Join(documented, " ") != strings.Join(want, " ") {
		t.Fatalf("docs/BENCHMARKS.md schema table out of sync with experiments.BenchReport\n doc:    %v\n struct: %v",
			documented, want)
	}
}

// TestObsJSONFieldsDocumented drift-guards the telemetry schema table in
// docs/OBSERVABILITY.md against obs.Report: every JSON field a report can
// emit must be documented, and nothing else — same contract as the
// BENCH.json table above.
func TestObsJSONFieldsDocumented(t *testing.T) {
	documented := markedTableNames(t, "docs/OBSERVABILITY.md",
		"obs:fields:begin", "obs:fields:end")
	sort.Strings(documented)

	tags := map[string]bool{}
	jsonTagsOf(reflect.TypeOf(obs.Report{}), tags)
	var want []string
	for tag := range tags {
		want = append(want, tag)
	}
	sort.Strings(want)

	if strings.Join(documented, " ") != strings.Join(want, " ") {
		t.Fatalf("docs/OBSERVABILITY.md schema table out of sync with obs.Report\n doc:    %v\n struct: %v",
			documented, want)
	}
}

// TestObsDocSchemaVersionInSync: the doc must state the exact current
// timeline schema version, so a schema bump cannot ship with a stale spec.
func TestObsDocSchemaVersionInSync(t *testing.T) {
	data, err := os.ReadFile("docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("`schema_version` is currently **%d**", obs.TimelineSchemaVersion)
	if !strings.Contains(string(data), want) {
		t.Fatalf("docs/OBSERVABILITY.md does not state the current schema version; expected %q", want)
	}
}

// TestArchitectureDocObservabilityColumnInSync drift-guards the telemetry
// column of the engine matrix: every engine row must state how it fills the
// obs layer (sim.Options.Obs reaches every engine; the conformance obs tests
// enforce the semantics, this enforces the documentation).
func TestArchitectureDocObservabilityColumnInSync(t *testing.T) {
	data, err := os.ReadFile("docs/ARCHITECTURE.md")
	if err != nil {
		t.Fatal(err)
	}
	in, col := false, -1
	rows := 0
	for _, line := range strings.Split(string(data), "\n") {
		switch {
		case strings.Contains(line, "matrix:engines:begin"):
			in = true
		case strings.Contains(line, "matrix:engines:end"):
			in = false
		case in && strings.HasPrefix(line, "| engine"):
			for i, cell := range strings.Split(line, "|") {
				if strings.Contains(cell, "telemetry") {
					col = i
				}
			}
			if col < 0 {
				t.Fatalf("engine matrix header lacks a telemetry column: %q", line)
			}
		case in && strings.HasPrefix(line, "| `"):
			rows++
			cells := strings.Split(line, "|")
			if col < 0 || col >= len(cells) || strings.TrimSpace(cells[col]) == "" {
				t.Errorf("engine row lacks a telemetry cell: %q", line)
			}
		}
	}
	if rows == 0 {
		t.Fatal("no engine rows found between the matrix:engines markers")
	}
}

// TestServerDocKeyFieldsInSync drift-guards the cache-key tuple table of
// docs/SERVER.md against serve.Key itself: every field of the purity tuple
// must be documented, and nothing else. Together with the key-completeness
// property test (internal/serve), this closes the loop request field →
// cache key → documentation.
func TestServerDocKeyFieldsInSync(t *testing.T) {
	documented := markedTableNames(t, "docs/SERVER.md",
		"server:key:begin", "server:key:end")
	sort.Strings(documented)

	rt := reflect.TypeOf(serve.Key{})
	var want []string
	for i := 0; i < rt.NumField(); i++ {
		want = append(want, rt.Field(i).Name)
	}
	sort.Strings(want)

	if strings.Join(documented, " ") != strings.Join(want, " ") {
		t.Fatalf("docs/SERVER.md cache-key table out of sync with serve.Key\n doc:    %v\n struct: %v",
			documented, want)
	}
}

// TestServerDocErrorCodesInSync drift-guards the error-code table of
// docs/SERVER.md against serve.ErrorCodes(): every code the API can return
// must be documented with its status, and nothing else.
func TestServerDocErrorCodesInSync(t *testing.T) {
	documented := markedTableNames(t, "docs/SERVER.md",
		"server:errors:begin", "server:errors:end")
	sort.Strings(documented)
	registered := append([]string(nil), serve.ErrorCodes()...)
	sort.Strings(registered)
	if strings.Join(documented, " ") != strings.Join(registered, " ") {
		t.Fatalf("docs/SERVER.md error-code table out of sync with serve.ErrorCodes\n doc:   %v\n codes: %v",
			documented, registered)
	}
}

// TestScenariosDocFaultTermsInSync drift-guards the fault/churn grammar
// table of docs/SCENARIOS.md against scenario.FaultTerms(): every term the
// parser accepts must be documented there, and nothing else. Teaching
// ParseFaults a new term without specifying it (or documenting a term the
// parser dropped) fails here, not when a user's spec is rejected.
func TestScenariosDocFaultTermsInSync(t *testing.T) {
	documented := markedTableNames(t, "docs/SCENARIOS.md",
		"scenarios:terms:begin", "scenarios:terms:end")
	sort.Strings(documented)
	registered := append([]string(nil), scenario.FaultTerms()...)
	sort.Strings(registered)
	if strings.Join(documented, " ") != strings.Join(registered, " ") {
		t.Fatalf("docs/SCENARIOS.md fault-term table out of sync with scenario.FaultTerms\n doc:   %v\n terms: %v",
			documented, registered)
	}
}

// TestArchitectureDocChurnColumnInSync drift-guards the churn column of the
// engine matrix: every engine row must state how crash/recover/cut/join
// churn behaves there. The cross-engine churn conformance suite enforces
// the semantics; this enforces the documentation.
func TestArchitectureDocChurnColumnInSync(t *testing.T) {
	data, err := os.ReadFile("docs/ARCHITECTURE.md")
	if err != nil {
		t.Fatal(err)
	}
	in, col := false, -1
	rows := 0
	for _, line := range strings.Split(string(data), "\n") {
		switch {
		case strings.Contains(line, "matrix:engines:begin"):
			in = true
		case strings.Contains(line, "matrix:engines:end"):
			in = false
		case in && strings.HasPrefix(line, "| engine"):
			for i, cell := range strings.Split(line, "|") {
				if strings.Contains(cell, "churn") {
					col = i
				}
			}
			if col < 0 {
				t.Fatalf("engine matrix header lacks a churn column: %q", line)
			}
		case in && strings.HasPrefix(line, "| `"):
			rows++
			cells := strings.Split(line, "|")
			if col < 0 || col >= len(cells) || strings.TrimSpace(cells[col]) == "" {
				t.Errorf("engine row lacks a churn cell: %q", line)
			}
		}
	}
	if rows == 0 {
		t.Fatal("no engine rows found between the matrix:engines markers")
	}
}

// TestTraceFormatDocVersionInSync drift-guards docs/TRACE_FORMAT.md against
// replay.FormatVersion: the spec must state the exact current version, so a
// codec bump cannot ship with a stale spec.
func TestTraceFormatDocVersionInSync(t *testing.T) {
	data, err := os.ReadFile("docs/TRACE_FORMAT.md")
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("The current `FormatVersion` is **%d**.", replay.FormatVersion)
	if !strings.Contains(string(data), want) {
		t.Fatalf("docs/TRACE_FORMAT.md does not state the current format version; expected the sentence %q", want)
	}
}
