package anonnet

import (
	"reflect"
	"testing"
)

// TestShardEngineFacade drives EngineSharded end to end through the public
// facade: broadcast, label assignment and topology extraction must agree
// with the sequential engine on every schedule-independent quantity, across
// shard counts.
func TestShardEngineFacade(t *testing.T) {
	n := RandomNetwork(24, 30, 11)

	seqRep, err := Broadcast(n, []byte("payload"), WithAlphabetTracking())
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4} {
		rep, err := Broadcast(n, []byte("payload"),
			WithEngine(EngineSharded), WithShards(shards), WithScheduler("random"), WithSeed(7),
			WithAlphabetTracking())
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !rep.Terminated || !rep.AllReceived {
			t.Fatalf("shards=%d: report %+v", shards, rep)
		}
		if rep.Protocol != seqRep.Protocol {
			t.Fatalf("shards=%d: protocol %s, sequential %s", shards, rep.Protocol, seqRep.Protocol)
		}
	}

	seqLabels, _, err := AssignLabels(n)
	if err != nil {
		t.Fatal(err)
	}
	labels, _, err := AssignLabels(n, WithEngine(EngineSharded), WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	// The labeled-vertex set is schedule-independent; the concrete intervals
	// are not (they differ between sequential schedulers too).
	if len(labels) != len(seqLabels) {
		t.Fatalf("sharded labeling labeled %d vertices, sequential %d", len(labels), len(seqLabels))
	}
	for v := range seqLabels {
		if _, ok := labels[v]; !ok {
			t.Fatalf("vertex %d labeled sequentially but not under the shard engine", v)
		}
	}

	topo, _, err := ExtractTopology(n, WithEngine(EngineSharded), WithShards(4), WithScheduler("greedy"))
	if err != nil {
		t.Fatal(err)
	}
	iso, err := topo.IsomorphicTo(n)
	if err != nil {
		t.Fatal(err)
	}
	if !iso {
		t.Fatal("topology extracted under the shard engine is not isomorphic to the network")
	}
}

// TestShardEngineDeterministicFacade: a fixed (scheduler, seed, shards)
// triple yields byte-identical reports through the facade.
func TestShardEngineDeterministicFacade(t *testing.T) {
	n := RandomNetwork(30, 40, 3)
	opts := func() []Option {
		return []Option{
			WithEngine(EngineSharded), WithShards(4), WithScheduler("random"), WithSeed(13),
			WithAlphabetTracking(),
		}
	}
	a, err := Broadcast(n, []byte("m"), opts()...)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Broadcast(n, []byte("m"), opts()...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical shard runs produced different reports:\n%+v\n%+v", a, b)
	}
}

// TestShardEngineRecordReplay: WithRecordTrace on the shard engine captures
// a wild-shard trace whose strict sequential replay reproduces the verdict —
// the facade face of the wild-capture pipeline.
func TestShardEngineRecordReplay(t *testing.T) {
	n := Ring(6)
	var tr *TraceData
	rep, err := Broadcast(n, []byte("m"),
		WithEngine(EngineSharded), WithShards(3), WithRecordTrace(&tr))
	if err != nil {
		t.Fatal(err)
	}
	if tr == nil {
		t.Fatal("no trace recorded")
	}
	if tr.Scheduler() != "wild-shard" {
		t.Fatalf("trace scheduler %q, want wild-shard", tr.Scheduler())
	}
	rep2, err := Broadcast(n, []byte("m"), WithReplayTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Terminated != rep.Terminated || rep2.AllReceived != rep.AllReceived {
		t.Fatalf("replayed shard trace diverges: %+v vs %+v", rep2, rep)
	}
}
